package ftl

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"parabit/internal/flash"
)

func newFTL() *FTL {
	return New(flash.NewArray(flash.Small(), flash.DefaultTiming()), DefaultConfig())
}

func page(f *FTL, seed byte) []byte {
	b := make([]byte, f.PageSize())
	for i := range b {
		b[i] = seed ^ byte(i)
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := newFTL()
	for lpn := uint64(0); lpn < 20; lpn++ {
		if _, err := f.Write(lpn, page(f, byte(lpn)), 0); err != nil {
			t.Fatal(err)
		}
	}
	for lpn := uint64(0); lpn < 20; lpn++ {
		data, _, err := f.Read(lpn, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := page(f, byte(lpn))
		for i := range data {
			if data[i] != want[i] {
				t.Fatalf("lpn %d byte %d: %02x vs %02x", lpn, i, data[i], want[i])
			}
		}
	}
}

func TestReadUnmapped(t *testing.T) {
	f := newFTL()
	if _, _, err := f.Read(5, 0); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("err = %v, want ErrUnmapped", err)
	}
}

func TestLogicalRangeEnforced(t *testing.T) {
	f := newFTL()
	over := uint64(f.LogicalPages())
	if _, err := f.Write(over, page(f, 0), 0); !errors.Is(err, ErrLogicalRange) {
		t.Fatalf("write: err = %v, want ErrLogicalRange", err)
	}
	if _, _, err := f.Read(over, 0); !errors.Is(err, ErrLogicalRange) {
		t.Fatalf("read: err = %v, want ErrLogicalRange", err)
	}
}

func TestOverwriteRemaps(t *testing.T) {
	f := newFTL()
	f.Write(7, page(f, 1), 0)
	first, _ := f.Lookup(7)
	f.Write(7, page(f, 2), 0)
	second, _ := f.Lookup(7)
	if first == second {
		t.Fatal("overwrite did not move the page (no out-of-place update)")
	}
	data, _, _ := f.Read(7, 0)
	if data[0] != page(f, 2)[0] {
		t.Fatal("read returned stale data")
	}
	if f.MappedPages() != 1 {
		t.Fatalf("mapped pages = %d, want 1", f.MappedPages())
	}
}

func TestStripingSpreadsChannels(t *testing.T) {
	f := newFTL()
	g := f.Array().Geometry()
	channels := map[int]bool{}
	for lpn := uint64(0); lpn < uint64(g.Channels); lpn++ {
		f.Write(lpn, page(f, byte(lpn)), 0)
		addr, _ := f.Lookup(lpn)
		channels[addr.Channel] = true
	}
	if len(channels) != g.Channels {
		t.Fatalf("%d consecutive pages hit %d channels, want %d",
			g.Channels, len(channels), g.Channels)
	}
}

func TestWritePairedSharesWordline(t *testing.T) {
	f := newFTL()
	wl, _, err := f.WritePaired(10, 11, page(f, 0xAA), page(f, 0x55), 0)
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := f.Lookup(10)
	a2, _ := f.Lookup(11)
	if a1.WordlineAddr != wl || a2.WordlineAddr != wl {
		t.Fatalf("paired pages not on reported wordline: %v, %v, wl %v", a1, a2, wl)
	}
	if a1.Kind != flash.LSBPage || a2.Kind != flash.MSBPage {
		t.Fatalf("paired kinds = %v, %v", a1.Kind, a2.Kind)
	}
	x, _, _ := f.Read(10, 0)
	y, _, _ := f.Read(11, 0)
	if x[0] != page(f, 0xAA)[0] || y[0] != page(f, 0x55)[0] {
		t.Fatal("paired data corrupted")
	}
}

func TestWritePairedAfterOddWrite(t *testing.T) {
	f := newFTL()
	// Odd single write leaves a plane mid-wordline somewhere; pairing must
	// still produce a shared wordline (padding the dangling MSB slot).
	g := f.Array().Geometry()
	for lpn := uint64(0); lpn < uint64(g.Planes())+1; lpn++ {
		if _, err := f.Write(lpn, page(f, byte(lpn)), 0); err != nil {
			t.Fatal(err)
		}
	}
	wl, _, err := f.WritePaired(500, 501, page(f, 1), page(f, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := f.Lookup(500)
	a2, _ := f.Lookup(501)
	if a1.WordlineAddr != wl || a2.WordlineAddr != wl {
		t.Fatal("pairing broken after odd write")
	}
}

func TestRelocationAccounting(t *testing.T) {
	f := newFTL()
	f.Write(1, page(f, 1), 0)
	f.WriteRelocation(2, page(f, 2), 0)
	f.WritePairedRelocation(3, 4, page(f, 3), page(f, 4), 0)
	s := f.Stats()
	if s.HostPagesWritten != 1 {
		t.Fatalf("host pages = %d, want 1", s.HostPagesWritten)
	}
	if s.ExtraPagesWritten != 3 {
		t.Fatalf("extra pages = %d, want 3", s.ExtraPagesWritten)
	}
	wa := s.WriteAmplification()
	if wa != 4.0 {
		t.Fatalf("write amplification = %v, want 4", wa)
	}
}

func TestWriteAmplificationEmpty(t *testing.T) {
	var s Stats
	if s.WriteAmplification() != 1 {
		t.Fatal("empty stats WA != 1")
	}
}

func TestGCReclaimsSpace(t *testing.T) {
	// Small geometry, heavy overwrite of a narrow LPN range: GC must keep
	// the device usable far beyond one device-full of writes.
	f := newFTL()
	g := f.Array().Geometry()
	totalPhysical := g.TotalPages()
	hot := uint64(64)
	writes := totalPhysical * 3 // 3x device capacity
	rng := rand.New(rand.NewSource(42))
	for i := int64(0); i < writes; i++ {
		lpn := uint64(rng.Intn(int(hot)))
		if _, err := f.Write(lpn, page(f, byte(i)), 0); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	s := f.Stats()
	if s.GCRuns == 0 {
		t.Fatal("no GC ran despite 3x-capacity write traffic")
	}
	if f.MappedPages() > int(hot) {
		t.Fatalf("mapped pages = %d, want <= %d", f.MappedPages(), hot)
	}
	// Everything must still read back as the latest version — spot check.
	for lpn := uint64(0); lpn < hot; lpn++ {
		if _, _, err := f.Read(lpn, 0); err != nil && !errors.Is(err, ErrUnmapped) {
			t.Fatalf("read after GC churn: %v", err)
		}
	}
}

func TestGCDataIntegrity(t *testing.T) {
	// Track golden values while churning; every surviving LPN must read
	// back its last-written content after GC has relocated pages.
	f := newFTL()
	g := f.Array().Geometry()
	golden := map[uint64]byte{}
	rng := rand.New(rand.NewSource(7))
	// A hot set around half the device keeps victims partially valid, so
	// GC must relocate (not just erase) to reclaim space.
	hot := int(f.LogicalPages() / 2)
	writes := g.TotalPages() * 2
	for i := int64(0); i < writes; i++ {
		lpn := uint64(rng.Intn(hot))
		seed := byte(rng.Intn(256))
		if _, err := f.Write(lpn, page(f, seed), 0); err != nil {
			t.Fatal(err)
		}
		golden[lpn] = seed
	}
	if f.Stats().GCPagesMoved == 0 {
		t.Fatal("test did not exercise GC relocation")
	}
	for lpn, seed := range golden {
		data, _, err := f.Read(lpn, 0)
		if err != nil {
			t.Fatalf("lpn %d: %v", lpn, err)
		}
		want := page(f, seed)
		for i := range data {
			if data[i] != want[i] {
				t.Fatalf("lpn %d byte %d corrupted after GC", lpn, i)
			}
		}
	}
}

func TestWearLevelingPrefersLowErase(t *testing.T) {
	f := newFTL()
	g := f.Array().Geometry()
	// Manually erase block 0 of plane 0 many times so its count is high.
	addr := g.PlaneAt(0)
	for i := 0; i < 5; i++ {
		if _, err := f.Array().Erase(addr, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	// The first allocation on plane 0 should avoid block 0.
	_, _, err := f.WritePaired(0, 1, page(f, 0), page(f, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := f.Lookup(0)
	if a.PlaneAddr == addr && a.Block == 0 {
		t.Fatal("allocator picked the high-erase block")
	}
}

func TestTrim(t *testing.T) {
	f := newFTL()
	f.Write(3, page(f, 3), 0)
	f.Trim(3)
	if _, _, err := f.Read(3, 0); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("read after trim: %v", err)
	}
	if f.MappedPages() != 0 {
		t.Fatal("trim left mapping")
	}
}

func TestDeviceFull(t *testing.T) {
	// No GC can help when every page is valid: filling the entire logical
	// space with unique LPNs on a tiny device must eventually fail cleanly
	// once physical space (logical + OP) is exhausted by padding-free
	// sequential writes... it should NOT fail before logical capacity.
	geo := flash.Geometry{
		Channels: 1, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 1,
		BlocksPerPlane: 4, WordlinesPerBlock: 4, PageSize: 64, CellBits: 2,
	}
	f := New(flash.NewArray(geo, flash.DefaultTiming()), Config{OverprovisionPct: 0.25, GCFreeBlockLow: 1})
	var failedAt int64 = -1
	for lpn := int64(0); lpn < f.LogicalPages()*2; lpn++ {
		if _, err := f.Write(uint64(lpn)%uint64(f.LogicalPages()), page(f, byte(lpn)), 0); err != nil {
			failedAt = lpn
			if !errors.Is(err, ErrDeviceFull) {
				t.Fatalf("unexpected error at %d: %v", lpn, err)
			}
			break
		}
	}
	// With 25% OP and steady overwrite traffic, GC always finds victims
	// with invalid pages, so the device should never report full.
	if failedAt >= 0 && failedAt < f.LogicalPages() {
		t.Fatalf("device full after only %d writes (logical capacity %d)", failedAt, f.LogicalPages())
	}
}

func TestTimingMonotonic(t *testing.T) {
	f := newFTL()
	var last int64
	for lpn := uint64(0); lpn < 50; lpn++ {
		done, err := f.Write(lpn, page(f, byte(lpn)), 0)
		if err != nil {
			t.Fatal(err)
		}
		if int64(done) <= 0 {
			t.Fatalf("write %d completed at %v", lpn, done)
		}
		_ = last
	}
}

func TestParallelWritesFasterThanSerial(t *testing.T) {
	// Striped writes across planes must complete much faster than the
	// same number of writes would take on one plane.
	f := newFTL()
	g := f.Array().Geometry()
	n := g.Planes()
	var maxDone int64
	for lpn := 0; lpn < n; lpn++ {
		done, err := f.Write(uint64(lpn), page(f, byte(lpn)), 0)
		if err != nil {
			t.Fatal(err)
		}
		if int64(done) > maxDone {
			maxDone = int64(done)
		}
	}
	serial := int64(n) * int64(f.Array().Timing().ProgramPage)
	if maxDone >= serial {
		t.Fatalf("parallel writes took %d ns, not faster than serial %d ns", maxDone, serial)
	}
}

func ExampleFTL_WritePaired() {
	array := flash.NewArray(flash.Small(), flash.DefaultTiming())
	f := New(array, DefaultConfig())
	x := make([]byte, f.PageSize())
	y := make([]byte, f.PageSize())
	wl, _, _ := f.WritePaired(0, 1, x, y, 0)
	a, _ := f.Lookup(0)
	b, _ := f.Lookup(1)
	fmt.Println(a.WordlineAddr == wl, b.WordlineAddr == wl, a.Kind, b.Kind)
	// Output: true true LSB MSB
}

func TestWriteLSBPair(t *testing.T) {
	f := newFTL()
	m, n, _, err := f.WriteLSBPair(20, 21, page(f, 0x70), page(f, 0x07), 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.PlaneAddr != n.PlaneAddr {
		t.Fatalf("pair split across planes: %v vs %v", m, n)
	}
	if m == n {
		t.Fatal("both operands on one wordline (should be two LSB pages)")
	}
	aM, _ := f.Lookup(20)
	aN, _ := f.Lookup(21)
	if aM.Kind != flash.LSBPage || aN.Kind != flash.LSBPage {
		t.Fatalf("kinds %v/%v, want LSB/LSB", aM.Kind, aN.Kind)
	}
	if aM.WordlineAddr != m || aN.WordlineAddr != n {
		t.Fatal("lookups disagree with returned wordlines")
	}
	// Both MSB slots padded.
	if f.Stats().PaddedPages < 2 {
		t.Fatalf("padded pages = %d, want >= 2", f.Stats().PaddedPages)
	}
	x, _, _ := f.Read(20, 0)
	y, _, _ := f.Read(21, 0)
	if x[0] != page(f, 0x70)[0] || y[0] != page(f, 0x07)[0] {
		t.Fatal("data corrupted")
	}
}

func TestWriteTriple(t *testing.T) {
	f := New(flash.NewArray(flash.SmallTLC(), flash.TLCTiming()), DefaultConfig())
	var data [3][]byte
	for i := range data {
		data[i] = page(f, byte(0x20+i))
	}
	wl, _, err := f.WriteTriple([3]uint64{5, 6, 7}, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []flash.PageKind{flash.LSBPage, flash.MSBPage, flash.TopPage}
	for i, lpn := range []uint64{5, 6, 7} {
		addr, ok := f.Lookup(lpn)
		if !ok || addr.WordlineAddr != wl || addr.Kind != kinds[i] {
			t.Fatalf("lpn %d at %v (wl %v)", lpn, addr, wl)
		}
		got, _, err := f.Read(lpn, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != data[i][0] {
			t.Fatalf("lpn %d corrupted", lpn)
		}
	}
}

func TestWriteTripleRejectedOnMLC(t *testing.T) {
	f := newFTL()
	var data [3][]byte
	for i := range data {
		data[i] = page(f, 1)
	}
	if _, _, err := f.WriteTriple([3]uint64{0, 1, 2}, data, 0); err == nil {
		t.Fatal("triple accepted on MLC")
	}
}

func TestTLCFTLGCIntegrity(t *testing.T) {
	// GC on a TLC device must relocate all three kinds correctly.
	f := New(flash.NewArray(flash.SmallTLC(), flash.TLCTiming()), DefaultConfig())
	g := f.Array().Geometry()
	golden := map[uint64]byte{}
	rng := rand.New(rand.NewSource(13))
	hot := int(f.LogicalPages() / 2)
	writes := g.TotalPages() * 2
	for i := int64(0); i < writes; i++ {
		lpn := uint64(rng.Intn(hot))
		seed := byte(rng.Intn(256))
		if _, err := f.Write(lpn, page(f, seed), 0); err != nil {
			t.Fatal(err)
		}
		golden[lpn] = seed
	}
	if f.Stats().GCPagesMoved == 0 {
		t.Fatal("no GC relocation on TLC device")
	}
	checked := 0
	for lpn, seed := range golden {
		data, _, err := f.Read(lpn, 0)
		if err != nil {
			t.Fatalf("lpn %d: %v", lpn, err)
		}
		if data[0] != page(f, seed)[0] {
			t.Fatalf("lpn %d corrupted after TLC GC", lpn)
		}
		checked++
		if checked > 2000 {
			break
		}
	}
}

func TestReadReclaimRefreshesHotBlock(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReadReclaimThreshold = 50
	f := New(flash.NewArray(flash.Small(), flash.DefaultTiming()), cfg)
	g := f.Array().Geometry()

	// Fill one plane's first block completely so it seals.
	pagesPerBlock := g.PagesPerBlock()
	planes := g.Planes()
	for i := 0; i < pagesPerBlock*planes; i++ {
		if _, err := f.Write(uint64(i), page(f, byte(i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Hammer one LPN until its block crosses the threshold.
	addr, ok := f.Lookup(0)
	if !ok {
		t.Fatal("lpn 0 unmapped")
	}
	for i := 0; i < cfg.ReadReclaimThreshold+5; i++ {
		if _, _, err := f.Read(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if f.Stats().ReadReclaims == 0 {
		t.Fatal("hot block never reclaimed")
	}
	// The page moved and still reads back correctly.
	newAddr, ok := f.Lookup(0)
	if !ok {
		t.Fatal("lpn 0 lost")
	}
	if newAddr == addr {
		t.Fatal("reclaim did not move the page")
	}
	data, _, err := f.Read(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != page(f, 0)[0] {
		t.Fatal("data corrupted by reclaim")
	}
	// The old block's exposure was reset by the erase.
	if f.Array().ReadCount(addr.PlaneAddr, addr.Block) != 0 {
		t.Fatal("reclaimed block still carries exposure")
	}
}

func TestReadReclaimDisabledByDefault(t *testing.T) {
	f := newFTL()
	f.Write(0, page(f, 1), 0)
	for i := 0; i < 500; i++ {
		if _, _, err := f.Read(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if f.Stats().ReadReclaims != 0 {
		t.Fatal("reclaim ran with zero threshold")
	}
}

func TestStaticWearLeveling(t *testing.T) {
	geo := flash.Geometry{
		Channels: 1, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 1,
		BlocksPerPlane: 16, WordlinesPerBlock: 8, PageSize: 64, CellBits: 2,
	}
	cfg := Config{OverprovisionPct: 0.25, GCFreeBlockLow: 2, StaticWLDelta: 4}
	f := New(flash.NewArray(geo, flash.DefaultTiming()), cfg)

	// Cold data: fill the first block's worth of LPNs once, never touch
	// them again.
	coldLPNs := geo.PagesPerBlock()
	for i := 0; i < coldLPNs; i++ {
		if _, err := f.Write(uint64(i), page(f, byte(i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Hot churn on a different LPN range racks up erases elsewhere.
	rng := rand.New(rand.NewSource(99))
	hotBase := uint64(coldLPNs)
	for i := 0; i < int(geo.TotalPages())*12; i++ {
		lpn := hotBase + uint64(rng.Intn(coldLPNs))
		if _, err := f.Write(lpn, page(f, byte(i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	if f.Stats().StaticWLMoves == 0 {
		t.Fatal("static wear leveling never ran despite heavy skewed churn")
	}
	// Cold data must survive migration intact.
	for i := 0; i < coldLPNs; i++ {
		data, _, err := f.Read(uint64(i), 0)
		if err != nil {
			t.Fatalf("cold lpn %d: %v", i, err)
		}
		if data[0] != page(f, byte(i))[0] {
			t.Fatalf("cold lpn %d corrupted by static WL", i)
		}
	}
}

func TestStaticWLDisabledByDefault(t *testing.T) {
	f := newFTL()
	g := f.Array().Geometry()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < int(g.TotalPages()); i++ {
		if _, err := f.Write(uint64(rng.Intn(64)), page(f, byte(i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	if f.Stats().StaticWLMoves != 0 {
		t.Fatal("static WL ran with zero delta")
	}
}

// TestStaticWLCompactsWithoutPadding proves static wear leveling no longer
// burns a padded program for every invalid source page: a cold block whose
// invalid pages come in whole wordlines compacts into the worn block with
// zero pads, and every surviving page keeps its page kind (LSB data stays
// LSB-resident), preserving LSB-before-MSB program order and ParaBit's
// aligned layouts.
func TestStaticWLCompactsWithoutPadding(t *testing.T) {
	geo := flash.Geometry{
		Channels: 1, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 1,
		BlocksPerPlane: 16, WordlinesPerBlock: 8, PageSize: 64, CellBits: 2,
	}
	cfg := Config{OverprovisionPct: 0.25, GCFreeBlockLow: 2, StaticWLDelta: 4}
	f := New(flash.NewArray(geo, flash.DefaultTiming()), cfg)

	// Cold block: one block's worth of pages, then trim alternate whole
	// wordlines so half the block is invalid but the valid half keeps
	// LSB/MSB pairs together.
	coldLPNs := geo.PagesPerBlock()
	for i := 0; i < coldLPNs; i++ {
		if _, err := f.Write(uint64(i), page(f, byte(i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	kept := make(map[uint64]flash.PageKind)
	for i := 0; i < coldLPNs; i++ {
		if (i/int(geo.CellBits))%2 == 1 { // odd wordlines of the cold block
			f.Trim(uint64(i))
			continue
		}
		addr, ok := f.Lookup(uint64(i))
		if !ok {
			t.Fatalf("cold lpn %d unmapped", i)
		}
		kept[uint64(i)] = addr.Kind
	}
	// Hot churn elsewhere racks up erase counts until static WL triggers.
	rng := rand.New(rand.NewSource(7))
	hotBase := uint64(coldLPNs)
	for i := 0; f.Stats().StaticWLMoves == 0; i++ {
		if i > int(geo.TotalPages())*40 {
			t.Fatal("static wear leveling never triggered")
		}
		lpn := hotBase + uint64(rng.Intn(coldLPNs))
		if _, err := f.Write(lpn, page(f, byte(i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	if pads := f.Stats().PaddedPages; pads != 0 {
		t.Fatalf("static WL burned %d padded programs; whole-wordline gaps need none", pads)
	}
	for lpn, kind := range kept {
		addr, ok := f.Lookup(lpn)
		if !ok {
			t.Fatalf("cold lpn %d lost by migration", lpn)
		}
		if addr.Kind != kind {
			t.Fatalf("cold lpn %d migrated from %v to %v slot; page kind must survive", lpn, kind, addr.Kind)
		}
		data, _, err := f.Read(lpn, 0)
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != page(f, byte(lpn))[0] {
			t.Fatalf("cold lpn %d corrupted by migration", lpn)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestStaticWLPadsOnlyForKindAlignment checks the complementary case: when
// the cold block's valid pages sit in MSB slots only, the migration pads
// exactly one LSB slot per moved page — the minimum required to keep MSB
// data in MSB slots — instead of one pad per invalid page plus overflow.
func TestStaticWLPadsOnlyForKindAlignment(t *testing.T) {
	geo := flash.Geometry{
		Channels: 1, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 1,
		BlocksPerPlane: 16, WordlinesPerBlock: 8, PageSize: 64, CellBits: 2,
	}
	cfg := Config{OverprovisionPct: 0.25, GCFreeBlockLow: 2, StaticWLDelta: 4}
	f := New(flash.NewArray(geo, flash.DefaultTiming()), cfg)

	coldLPNs := geo.PagesPerBlock()
	for i := 0; i < coldLPNs; i++ {
		if _, err := f.Write(uint64(i), page(f, byte(i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	valid := 0
	for i := 0; i < coldLPNs; i++ {
		addr, ok := f.Lookup(uint64(i))
		if !ok {
			t.Fatalf("cold lpn %d unmapped", i)
		}
		if addr.Kind == flash.LSBPage {
			f.Trim(uint64(i))
		} else {
			valid++
		}
	}
	rng := rand.New(rand.NewSource(11))
	hotBase := uint64(coldLPNs)
	for i := 0; f.Stats().StaticWLMoves == 0; i++ {
		if i > int(geo.TotalPages())*40 {
			t.Fatal("static wear leveling never triggered")
		}
		lpn := hotBase + uint64(rng.Intn(coldLPNs))
		if _, err := f.Write(lpn, page(f, byte(i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	if pads := f.Stats().PaddedPages; pads != int64(valid) {
		t.Fatalf("static WL padded %d pages, want exactly %d (one LSB filler per migrated MSB page)",
			pads, valid)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteRetriesPastWedgedPlane fills one plane with fully valid data
// (so its allocator rejects new blocks) and verifies striped writes still
// succeed by retrying on the remaining planes instead of reporting the
// whole device full.
func TestWriteRetriesPastWedgedPlane(t *testing.T) {
	geo := flash.Geometry{
		Channels: 2, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 1,
		BlocksPerPlane: 8, WordlinesPerBlock: 4, PageSize: 64, CellBits: 2,
	}
	// GCFreeBlockLow 0 lets a plane run its free list down to the single
	// reserve block, at which point its allocator refuses new data blocks
	// even though the sibling plane is wide open.
	cfg := Config{OverprovisionPct: 0.25, GCFreeBlockLow: 0}
	f := New(flash.NewArray(geo, flash.DefaultTiming()), cfg)

	// Fill plane 0 completely with valid pages, bypassing GC.
	pa0 := f.planes[0]
	lpn := uint64(0)
	for {
		if _, err := f.writeTo(pa0, lpn, page(f, byte(lpn)), 0, false); err != nil {
			if !errors.Is(err, ErrDeviceFull) {
				t.Fatal(err)
			}
			break
		}
		lpn++
	}
	if len(pa0.free) != 0 {
		t.Fatalf("plane 0 not wedged: %d free blocks", len(pa0.free))
	}
	// Striped writes round-robin over both planes; every one must succeed
	// even when the cursor lands on the wedged plane.
	for i := 0; i < 3*len(f.planes); i++ {
		if _, err := f.Write(lpn, page(f, byte(lpn)), 0); err != nil {
			t.Fatalf("striped write %d: %v (plane 1 still has %d free blocks)",
				i, err, len(f.planes[1].free))
		}
		lpn++
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckInvariantsAfterChurn exercises the bookkeeping checker across a
// GC- and wear-leveling-heavy workload.
func TestCheckInvariantsAfterChurn(t *testing.T) {
	f := New(flash.NewArray(flash.Small(), flash.DefaultTiming()),
		Config{OverprovisionPct: 0.2, GCFreeBlockLow: 2, StaticWLDelta: 6})
	rng := rand.New(rand.NewSource(3))
	logical := uint64(f.LogicalPages())
	for i := 0; i < 6000; i++ {
		lpn := uint64(rng.Intn(int(logical / 4)))
		if _, err := f.Write(lpn, page(f, byte(i)), 0); err != nil {
			t.Fatal(err)
		}
		if i%13 == 0 {
			f.Trim(uint64(rng.Intn(int(logical / 4))))
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
