package ftl

import (
	"errors"
	"testing"

	"parabit/internal/faults"
	"parabit/internal/flash"
	"parabit/internal/sim"
)

// scriptInjector fails a scripted number of programs and erases (-1 for
// all of them), for tests that need exact fault placement without a plan.
type scriptInjector struct {
	failPrograms int
	failErases   int
}

func (s *scriptInjector) Inspect(op flash.FaultOp, plane flash.PlaneAddr, block int, at sim.Time) flash.FaultOutcome {
	fire := func(n *int, kind flash.FaultKind) flash.FaultOutcome {
		if *n == 0 {
			return flash.FaultOutcome{}
		}
		if *n > 0 {
			*n--
		}
		return flash.FaultOutcome{Err: &flash.FaultError{Op: op, Kind: kind, Plane: plane, Block: block}}
	}
	switch op {
	case flash.FaultProgram:
		return fire(&s.failPrograms, flash.FaultProgramFail)
	case flash.FaultErase:
		return fire(&s.failErases, flash.FaultEraseFail)
	}
	return flash.FaultOutcome{}
}

func TestProgramFailResteer(t *testing.T) {
	f := newFTL()
	for lpn := uint64(0); lpn < 10; lpn++ {
		if _, err := f.Write(lpn, page(f, byte(lpn)), 0); err != nil {
			t.Fatal(err)
		}
	}
	inj := &scriptInjector{failPrograms: 1}
	f.Array().SetFaultInjector(inj)
	if _, err := f.Write(3, page(f, 0xAB), 0); err != nil {
		t.Fatalf("write across one program failure should re-steer: %v", err)
	}
	f.Array().SetFaultInjector(nil)

	st := f.Stats()
	if st.ProgramFails != 1 || st.ResteeredWrites != 1 {
		t.Errorf("ProgramFails=%d ResteeredWrites=%d, want 1/1", st.ProgramFails, st.ResteeredWrites)
	}
	if st.BlocksRetired != 1 || f.BadBlocks() != 1 {
		t.Errorf("BlocksRetired=%d BadBlocks=%d, want 1/1", st.BlocksRetired, f.BadBlocks())
	}
	// The re-steered write and every earlier acknowledged page read back.
	for lpn := uint64(0); lpn < 10; lpn++ {
		want := page(f, byte(lpn))
		if lpn == 3 {
			want = page(f, 0xAB)
		}
		data, _, err := f.Read(lpn, 0)
		if err != nil {
			t.Fatalf("read %d: %v", lpn, err)
		}
		if data[0] != want[0] || data[1] != want[1] {
			t.Fatalf("lpn %d corrupted after re-steer", lpn)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPermanentProgramFailureKeepsOldData(t *testing.T) {
	f := newFTL()
	if _, err := f.Write(5, page(f, 0x11), 0); err != nil {
		t.Fatal(err)
	}
	// Every program fails: the overwrite must error out, never ack, and
	// never destroy the previously acknowledged copy.
	f.Array().SetFaultInjector(&scriptInjector{failPrograms: -1})
	if _, err := f.Write(5, page(f, 0x22), 0); err == nil {
		t.Fatal("write with all programs failing was acknowledged")
	}
	f.Array().SetFaultInjector(nil)

	data, _, err := f.Read(5, 0)
	if err != nil {
		t.Fatalf("read acknowledged page: %v", err)
	}
	want := page(f, 0x11)
	for i := range data {
		if data[i] != want[i] {
			t.Fatalf("byte %d: %02x, want %02x (old copy lost)", i, data[i], want[i])
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEraseFailRetiresDuringGC(t *testing.T) {
	geo := flash.Small()
	f := New(flash.NewArray(geo, flash.DefaultTiming()), Config{OverprovisionPct: 0.25, GCFreeBlockLow: 1})
	inj := &scriptInjector{failErases: 1}
	f.Array().SetFaultInjector(inj)
	logical := uint64(f.LogicalPages())
	// Overwrite the logical space until GC has certainly erased (or here:
	// failed to erase and retired) at least one victim.
	for round := 0; round < 3; round++ {
		for lpn := uint64(0); lpn < logical; lpn++ {
			if _, err := f.Write(lpn, page(f, byte(lpn)^byte(round)), 0); err != nil {
				t.Fatalf("round %d lpn %d: %v", round, lpn, err)
			}
		}
	}
	f.Array().SetFaultInjector(nil)
	st := f.Stats()
	if st.GCRuns == 0 {
		t.Fatal("workload never triggered GC; erase-fail path not exercised")
	}
	if st.EraseFails != 1 || st.BlocksRetired != 1 {
		t.Errorf("EraseFails=%d BlocksRetired=%d, want 1/1", st.EraseFails, st.BlocksRetired)
	}
	for lpn := uint64(0); lpn < logical; lpn++ {
		data, _, err := f.Read(lpn, 0)
		if err != nil {
			t.Fatalf("read %d: %v", lpn, err)
		}
		if want := byte(lpn) ^ 2; data[0] != want {
			t.Fatalf("lpn %d: %02x, want %02x", lpn, data[0], want)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStuckBlockRetiredViaPlan(t *testing.T) {
	geo := flash.Small()
	f := New(flash.NewArray(geo, flash.DefaultTiming()), DefaultConfig())
	eng, err := faults.NewEngine(faults.Plan{Rules: []faults.Rule{
		{Type: faults.RuleStuckBlock, Plane: 0, Block: 0},
	}}, geo)
	if err != nil {
		t.Fatal(err)
	}
	f.Array().SetFaultInjector(eng)
	// A full stripe across all planes forces one allocation on plane 0,
	// which opens (lowest-wear) block 0, hits the stuck block, retires it
	// and re-steers.
	for lpn := uint64(0); lpn < uint64(geo.Planes()); lpn++ {
		if _, err := f.Write(lpn, page(f, byte(lpn)), 0); err != nil {
			t.Fatalf("lpn %d: %v", lpn, err)
		}
	}
	if f.BadBlocks() != 1 {
		t.Errorf("BadBlocks=%d, want 1 (the stuck block)", f.BadBlocks())
	}
	if got := eng.Stats().StuckBlock; got == 0 {
		t.Error("engine never reported the stuck block")
	}
	for lpn := uint64(0); lpn < uint64(geo.Planes()); lpn++ {
		data, _, err := f.Read(lpn, 0)
		if err != nil {
			t.Fatalf("read %d: %v", lpn, err)
		}
		if data[0] != page(f, byte(lpn))[0] {
			t.Fatalf("lpn %d corrupted", lpn)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTransientPlaneFaultSurfacesRetryable(t *testing.T) {
	geo := flash.Small()
	f := New(flash.NewArray(geo, flash.DefaultTiming()), DefaultConfig())
	eng, err := faults.NewEngine(faults.Plan{Rules: []faults.Rule{
		{Type: faults.RulePlaneTransient, Plane: -1, FromUS: 0, ToUS: 100},
	}}, geo)
	if err != nil {
		t.Fatal(err)
	}
	f.Array().SetFaultInjector(eng)
	_, werr := f.Write(0, page(f, 1), 0)
	if !flash.IsTransientFault(werr) {
		t.Fatalf("write during outage: %v, want transient fault", werr)
	}
	if f.BadBlocks() != 0 || f.Stats().BlocksRetired != 0 {
		t.Error("transient fault must not retire blocks")
	}
	if f.MappedPages() != 0 {
		t.Error("failed write left a mapping behind")
	}
	// After the window the same write succeeds — exactly what a
	// bounded-backoff retry at the scheduler would do.
	later := sim.Time(200 * sim.Microsecond)
	if _, err := f.Write(0, page(f, 1), later); err != nil {
		t.Fatalf("write after outage: %v", err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWritePairedResteersOnProgramFail(t *testing.T) {
	f := newFTL()
	f.Array().SetFaultInjector(&scriptInjector{failPrograms: 1})
	wl, _, err := f.WritePaired(0, 1, page(f, 0x0A), page(f, 0x0B), 0)
	f.Array().SetFaultInjector(nil)
	if err != nil {
		t.Fatalf("paired write across one program failure: %v", err)
	}
	if f.BadBlocks() != 1 {
		t.Errorf("BadBlocks=%d, want 1", f.BadBlocks())
	}
	// Both pages must land on the same (healthy) wordline and read back.
	aL, okL := f.Lookup(0)
	aM, okM := f.Lookup(1)
	if !okL || !okM || aL.WordlineAddr != wl || aM.WordlineAddr != wl {
		t.Fatalf("paired pages not co-located: %v / %v vs %v", aL, aM, wl)
	}
	for lpn, seed := range map[uint64]byte{0: 0x0A, 1: 0x0B} {
		data, _, err := f.Read(lpn, 0)
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != page(f, seed)[0] {
			t.Fatalf("lpn %d corrupted", lpn)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceFullStillDistinctFromFault(t *testing.T) {
	// A genuinely full device must keep reporting ErrDeviceFull, not a
	// fault, so callers can tell capacity exhaustion from hardware trouble.
	geo := flash.Small()
	f := New(flash.NewArray(geo, flash.DefaultTiming()), Config{OverprovisionPct: 0.0, GCFreeBlockLow: 1})
	var lastErr error
	for lpn := uint64(0); ; lpn++ {
		if lpn >= uint64(f.LogicalPages()) {
			lpn = 0
		}
		if _, lastErr = f.Write(lpn, page(f, byte(lpn)), 0); lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrDeviceFull) {
		t.Fatalf("filling an un-overprovisioned device: %v, want ErrDeviceFull", lastErr)
	}
	if flash.AsFaultError(lastErr) != nil {
		t.Fatal("capacity exhaustion misreported as a hardware fault")
	}
}
