package ftl

import (
	"math/rand"
	"testing"

	"parabit/internal/flash"
	"parabit/internal/telemetry"
)

// TestTelemetryMirrorsMaintenanceStats forces garbage collection and read
// reclaim with a sink attached and checks that the telemetry counters
// track Stats exactly and that the maintenance lanes recorded spans.
func TestTelemetryMirrorsMaintenanceStats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReadReclaimThreshold = 50
	f := New(flash.NewArray(flash.Small(), flash.DefaultTiming()), cfg)
	sink := telemetry.New()
	tr := sink.EnableTrace()
	f.SetTelemetry(sink)

	// Overwrite churn forces GC.
	rng := rand.New(rand.NewSource(7))
	span := int(f.LogicalPages()) / 2
	for i := 0; f.Stats().GCRuns == 0; i++ {
		if i > 20*int(f.LogicalPages()) {
			t.Fatal("GC never triggered")
		}
		if _, err := f.Write(uint64(rng.Intn(span)), page(f, byte(i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Read-hammer one page past the disturb threshold to force reclaim.
	for i := 0; i < cfg.ReadReclaimThreshold+5; i++ {
		if _, _, err := f.Read(0, 0); err != nil {
			t.Fatal(err)
		}
	}

	st := f.Stats()
	if st.GCRuns == 0 || st.ReadReclaims == 0 {
		t.Fatalf("scenario did not exercise maintenance: %+v", st)
	}
	if st.ReclaimPagesMoved == 0 {
		t.Error("reclaim moved no pages")
	}
	for name, want := range map[string]int64{
		"ftl.gc.runs":                  st.GCRuns,
		"ftl.gc.pages_moved":           st.GCPagesMoved,
		"ftl.read_reclaim.runs":        st.ReadReclaims,
		"ftl.read_reclaim.pages_moved": st.ReclaimPagesMoved,
		"ftl.padded_pages":             st.PaddedPages,
	} {
		if got := sink.Counter(name).Value(); got != want {
			t.Errorf("%s: counter %d, stats %d", name, got, want)
		}
	}
	if tr.Len() == 0 {
		t.Error("maintenance recorded no spans")
	}
}

// TestTelemetryStaticWL mirrors the wear-leveling scenario and checks the
// new WLPagesMoved accounting alongside its counter.
func TestTelemetryStaticWL(t *testing.T) {
	geo := flash.Geometry{
		Channels: 1, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 1,
		BlocksPerPlane: 16, WordlinesPerBlock: 8, PageSize: 64, CellBits: 2,
	}
	cfg := Config{OverprovisionPct: 0.25, GCFreeBlockLow: 2, StaticWLDelta: 4}
	f := New(flash.NewArray(geo, flash.DefaultTiming()), cfg)
	sink := telemetry.New()
	f.SetTelemetry(sink)

	coldLPNs := geo.PagesPerBlock()
	for i := 0; i < coldLPNs; i++ {
		if _, err := f.Write(uint64(i), page(f, byte(i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(99))
	hotBase := uint64(coldLPNs)
	for i := 0; i < int(geo.TotalPages())*12; i++ {
		if _, err := f.Write(hotBase+uint64(rng.Intn(coldLPNs)), page(f, byte(i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Stats()
	if st.StaticWLMoves == 0 {
		t.Fatal("static wear leveling never ran")
	}
	if st.WLPagesMoved == 0 {
		t.Error("wear leveling moved no pages")
	}
	if got := sink.Counter("ftl.static_wl.moves").Value(); got != st.StaticWLMoves {
		t.Errorf("counter %d, stats %d", got, st.StaticWLMoves)
	}
}

// TestSetTelemetryNilDetaches makes sure detaching returns the FTL to the
// free no-op state.
func TestSetTelemetryNilDetaches(t *testing.T) {
	f := newFTL()
	sink := telemetry.New()
	f.SetTelemetry(sink)
	f.SetTelemetry(nil)
	for lpn := uint64(0); lpn < 10; lpn++ {
		if _, err := f.Write(lpn, page(f, byte(lpn)), 0); err != nil {
			t.Fatal(err)
		}
	}
	sink.EachCounter(func(name string, v int64) {
		if v != 0 {
			t.Errorf("detached sink still received %s=%d", name, v)
		}
	})
}
