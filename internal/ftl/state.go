package ftl

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"parabit/internal/binio"
	"parabit/internal/flash"
)

// ErrBadState reports an FTL state blob that does not decode against
// this device's geometry.
var ErrBadState = errors.New("ftl: bad state")

const stateMagic = 0x314C5446 // "FTL1"

// statsFields flattens Stats in a fixed order for serialization; keep in
// sync with the struct.
func statsFields(s *Stats) []*int64 {
	return []*int64{
		&s.HostPagesWritten, &s.ExtraPagesWritten, &s.GCRuns, &s.GCPagesMoved,
		&s.PaddedPages, &s.ReadReclaims, &s.ReclaimPagesMoved, &s.StaticWLMoves,
		&s.WLPagesMoved, &s.ProgramFails, &s.EraseFails, &s.BlocksRetired,
		&s.RetirePagesMoved, &s.ResteeredWrites,
	}
}

// WriteState serializes the translation state: the mapping table and
// page versions (sorted, so the encoding is deterministic), the
// round-robin cursor, wear/maintenance statistics, and each plane's
// allocator position with its free/full/bad block lists. The reverse map
// and per-block valid counts are derived from l2p on restore. Like every
// FTL method this must run under the scheduler's mutex.
func (f *FTL) WriteState(w io.Writer) error {
	b := binio.NewWriter(w)
	b.U32(stateMagic)

	lpns := make([]uint64, 0, len(f.l2p))
	for lpn := range f.l2p {
		lpns = append(lpns, lpn)
	}
	sort.Slice(lpns, func(i, j int) bool { return lpns[i] < lpns[j] })
	b.U64(uint64(len(lpns)))
	for _, lpn := range lpns {
		b.U64(lpn)
		b.U64(f.l2p[lpn])
	}

	vlpns := make([]uint64, 0, len(f.vers))
	for lpn := range f.vers {
		vlpns = append(vlpns, lpn)
	}
	sort.Slice(vlpns, func(i, j int) bool { return vlpns[i] < vlpns[j] })
	b.U64(uint64(len(vlpns)))
	for _, lpn := range vlpns {
		b.U64(lpn)
		b.U64(f.vers[lpn])
	}

	b.U64(uint64(f.cursor))
	st := f.stats
	for _, p := range statsFields(&st) {
		b.I64(*p)
	}

	intList := func(list []int) {
		b.U64(uint64(len(list)))
		for _, v := range list {
			b.U64(uint64(v))
		}
	}
	for _, pa := range f.planes {
		b.I64(int64(pa.active))
		b.U64(uint64(pa.nextWL))
		b.U8(uint8(pa.nextKind))
		intList(pa.free)
		intList(pa.full)
		intList(pa.bad)
	}
	return b.Err()
}

// ReadState restores a WriteState blob into a freshly constructed FTL
// over the same geometry, replacing the all-blocks-free allocator New
// set up. Every index is bounds-checked so a corrupt blob surfaces as an
// error, never a panic; structural consistency beyond that is the
// caller's CheckInvariants pass.
func (f *FTL) ReadState(r io.Reader) error {
	b := binio.NewReader(r, 1<<20)
	if m := b.U32(); b.Err() == nil && m != stateMagic {
		return fmt.Errorf("%w: magic %#x", ErrBadState, m)
	}

	totalPages := uint64(f.geo.TotalPages())
	logical := uint64(f.LogicalPages())
	maxEntries := totalPages + 1

	n := b.U64()
	if b.Err() != nil {
		return b.Err()
	}
	if n > maxEntries {
		return fmt.Errorf("%w: %d mapping entries", ErrBadState, n)
	}
	l2p := make(map[uint64]uint64, n)
	p2l := make(map[uint64]uint64, n)
	for i := uint64(0); i < n; i++ {
		lpn, ppn := b.U64(), b.U64()
		if b.Err() != nil {
			return b.Err()
		}
		if lpn >= logical || ppn >= totalPages {
			return fmt.Errorf("%w: mapping %d -> %d out of range", ErrBadState, lpn, ppn)
		}
		if _, dup := l2p[lpn]; dup {
			return fmt.Errorf("%w: duplicate lpn %d", ErrBadState, lpn)
		}
		if _, dup := p2l[ppn]; dup {
			return fmt.Errorf("%w: ppn %d mapped twice", ErrBadState, ppn)
		}
		l2p[lpn] = ppn
		p2l[ppn] = lpn
	}

	nv := b.U64()
	if b.Err() != nil {
		return b.Err()
	}
	if nv > maxEntries {
		return fmt.Errorf("%w: %d version entries", ErrBadState, nv)
	}
	vers := make(map[uint64]uint64, nv)
	for i := uint64(0); i < nv; i++ {
		lpn, v := b.U64(), b.U64()
		if b.Err() != nil {
			return b.Err()
		}
		if lpn >= logical {
			return fmt.Errorf("%w: version for lpn %d out of range", ErrBadState, lpn)
		}
		vers[lpn] = v
	}

	cursor := b.U64()
	if b.Err() == nil && cursor >= uint64(len(f.order)) {
		return fmt.Errorf("%w: cursor %d", ErrBadState, cursor)
	}
	var st Stats
	for _, p := range statsFields(&st) {
		*p = b.I64()
	}

	blocks := uint64(f.geo.BlocksPerPlane)
	intList := func() ([]int, error) {
		ln := b.U64()
		if b.Err() != nil {
			return nil, b.Err()
		}
		if ln > blocks {
			return nil, fmt.Errorf("%w: block list of %d", ErrBadState, ln)
		}
		out := make([]int, 0, ln)
		for i := uint64(0); i < ln; i++ {
			v := b.U64()
			if b.Err() != nil {
				return nil, b.Err()
			}
			if v >= blocks {
				return nil, fmt.Errorf("%w: block index %d", ErrBadState, v)
			}
			out = append(out, int(v))
		}
		return out, nil
	}
	planes := make([]*planeAlloc, len(f.planes))
	for i := range planes {
		pa := &planeAlloc{addr: f.geo.PlaneAt(i), valid: make([]int, f.geo.BlocksPerPlane)}
		active := b.I64()
		nextWL := b.U64()
		nextKind := b.U8()
		if b.Err() != nil {
			return b.Err()
		}
		if active < -1 || active >= int64(blocks) {
			return fmt.Errorf("%w: active block %d", ErrBadState, active)
		}
		if nextWL > uint64(f.geo.WordlinesPerBlock) || int(nextKind) >= f.geo.CellBits {
			return fmt.Errorf("%w: allocator position wl=%d kind=%d", ErrBadState, nextWL, nextKind)
		}
		pa.active = int(active)
		pa.nextWL = int(nextWL)
		pa.nextKind = flash.PageKind(nextKind)
		var err error
		if pa.free, err = intList(); err != nil {
			return err
		}
		if pa.full, err = intList(); err != nil {
			return err
		}
		if pa.bad, err = intList(); err != nil {
			return err
		}
		planes[i] = pa
	}
	if b.Err() != nil {
		return b.Err()
	}

	// Rebuild the derived valid counts from the restored mapping.
	for ppn := range p2l {
		addr := f.geo.PageAt(ppn)
		planes[f.geo.PlaneIndex(addr.PlaneAddr)].valid[addr.Block]++
	}

	f.l2p = l2p
	f.p2l = p2l
	f.vers = vers
	f.cursor = int(cursor)
	f.stats = st
	f.planes = planes
	return nil
}
