// Command parabit-vet is the repository's custom static-analysis suite:
// a multichecker over the analyzers in internal/analysis that enforces
// the invariants ordinary go vet cannot see.
//
//   - latchseq: latch control sequences follow the ParaBit circuit
//     contract (init first, sense before combine, no M3 before init, no
//     unknown step kinds, per-op table shapes).
//   - simtime: no wall-clock time in internal simulation packages; all
//     latency flows through internal/sim's virtual clock.
//   - errdrop: no discarded error returns from the device stack
//     (internal/ssd, internal/ftl, internal/sched).
//   - nocopylock: no by-value copies of telemetry/sched handle structs
//     carrying mutex or atomic state.
//   - guardedby: fields annotated `// guarded by mu` are only accessed
//     with the named mutex held — writes need the write lock, *Locked
//     helpers are only called under the lock, and the post-Unlock
//     snapshot-after-release shape is flagged.
//   - lockorder: the package lock-acquisition graph is free of cycles,
//     same-instance re-acquisition, and inversions of declared
//     //parabit:lockorder pragmas.
//
// Usage:
//
//	parabit-vet [packages...]          analyze packages (default ./...)
//	go vet -vettool=$(which parabit-vet) ./...
//
// In the second form the binary speaks the go vet unitchecker protocol
// (-V=full, -flags, and JSON .cfg files), so findings integrate with go
// vet's caching and per-package scheduling. Suppress a finding by
// putting `//lint:ignore <analyzer> reason` on the line above it.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"parabit/internal/analysis"
	"parabit/internal/analysis/errdrop"
	"parabit/internal/analysis/guardedby"
	"parabit/internal/analysis/latchseq"
	"parabit/internal/analysis/lockorder"
	"parabit/internal/analysis/nocopylock"
	"parabit/internal/analysis/simtime"
)

// version participates in the go vet tool-identity handshake; bump it
// when analyzer behavior changes so go vet's result cache invalidates.
const version = "v1.1.0"

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		latchseq.Analyzer,
		simtime.Analyzer,
		errdrop.Analyzer,
		nocopylock.Analyzer,
		guardedby.Analyzer,
		lockorder.Analyzer,
	}
}

func main() {
	args := os.Args[1:]

	// go vet protocol handshakes.
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			// Tool identity for go's build cache. The second field must
			// be "version" and the third must not be "devel".
			fmt.Printf("parabit-vet version %s\n", version)
			return
		case args[0] == "-flags":
			// go vet queries supported analyzer flags; we define none.
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(unitcheck(args[0]))
		}
	}

	if len(args) > 0 && (args[0] == "-h" || args[0] == "-help" || args[0] == "--help") {
		usage()
		return
	}
	os.Exit(standalone(args))
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: parabit-vet [packages...]\n\nanalyzers:\n")
	for _, a := range analyzers() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
}

// standalone loads packages through the source loader and analyzes them.
func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "parabit-vet:", err)
		return 1
	}
	loader := analysis.NewLoader(wd)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parabit-vet:", err)
		return 1
	}
	diags, err := analysis.Run(pkgs, analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "parabit-vet:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", relPos(d.Pos, wd), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func relPos(pos token.Position, wd string) string {
	s := pos.String()
	if rel, ok := strings.CutPrefix(s, wd+string(os.PathSeparator)); ok {
		return rel
	}
	return s
}

// vetConfig mirrors the JSON the go command writes for each vet unit.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package unit under the go vet protocol and
// returns the process exit code: 0 clean, 1 internal error, 2 findings.
func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parabit-vet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "parabit-vet: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// We use no cross-package facts, but go caches and feeds back the
	// vetx output file; write it first so every success path has it.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("parabit-vet: no facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "parabit-vet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependencies are vetted only for facts; we have none.
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "parabit-vet:", err)
			return 1
		}
		files = append(files, f)
	}

	// Import resolution: source import path → canonical path via
	// ImportMap, then export data from the compiler-built package files.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	// Test-variant packages are named "pkg [pkg.test]"; analyzers key on
	// the plain import path.
	pkgPath := cfg.ImportPath
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}

	sizes := types.SizesFor(cfg.Compiler, runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tcfg := &types.Config{Importer: imp, Sizes: sizes, GoVersion: cfg.GoVersion}
	tpkg, err := tcfg.Check(pkgPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "parabit-vet:", err)
		return 1
	}

	pkg := &analysis.Package{
		PkgPath:   pkgPath,
		Dir:       cfg.Dir,
		GoFiles:   cfg.GoFiles,
		Fset:      fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "parabit-vet:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
