package main

import (
	"strings"
	"testing"
)

// TestVersionHandshakeFormat pins the -V=full output to the shape the go
// command's tool-identity parser accepts: at least three fields, second
// field "version", third field not "devel".
func TestVersionHandshakeFormat(t *testing.T) {
	line := "parabit-vet version " + version
	f := strings.Fields(line)
	if len(f) < 3 {
		t.Fatalf("-V output %q has %d fields, go vet needs at least 3", line, len(f))
	}
	if f[1] != "version" {
		t.Errorf("-V output %q: second field is %q, go vet requires \"version\"", line, f[1])
	}
	if f[2] == "devel" {
		t.Errorf("-V output %q: version \"devel\" requires a buildID field go vet would reject here", line)
	}
}

func TestAnalyzerNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range analyzers() {
		if a.Name == "" {
			t.Error("analyzer with empty name")
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc string", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) < 6 {
		t.Errorf("expected at least 6 analyzers, got %d", len(seen))
	}
}
