// parabit-trace replays a simple operation trace against the simulated
// SSD and reports per-operation and total modeled latency.
//
// Trace format (one op per line, '#' comments):
//
//	write   <lpn> <hexpattern>
//	pair    <lpnA> <lpnB> <hexA> <hexB>     # co-located operand pair
//	group   <lpn1,lpn2,...> <hex1,hex2,...> # aligned LSB group
//	bitwise <op> <scheme> <lpnA> <lpnB>
//	reduce  <op> <scheme> <lpn1,lpn2,...>
//
// Usage:
//
//	parabit-trace -f trace.txt
//	parabit-trace -demo          # run a built-in demonstration trace
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"parabit"
)

const demoTrace = `# demonstration: pre-allocated pair, then a location-free reduction
pair 0 1 a5 3c
bitwise AND prealloc 0 1
bitwise XOR prealloc 0 1
group 10,11,12,13 ff,0f,33,55
reduce AND locfree 10,11,12,13
reduce XOR locfree 10,11,12,13
`

func main() {
	file := flag.String("f", "", "trace file to replay")
	demo := flag.Bool("demo", false, "replay the built-in demo trace")
	flag.Parse()

	var reader *bufio.Scanner
	switch {
	case *demo:
		reader = bufio.NewScanner(strings.NewReader(demoTrace))
	case *file != "":
		f, err := os.Open(*file)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		reader = bufio.NewScanner(f)
	default:
		flag.Usage()
		os.Exit(2)
	}

	dev, err := parabit.NewDevice(parabit.WithSmallGeometry())
	if err != nil {
		fail("%v", err)
	}

	lineNo := 0
	ops := 0
	for reader.Scan() {
		lineNo++
		line := strings.TrimSpace(reader.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := execute(dev, line); err != nil {
			fail("line %d: %v", lineNo, err)
		}
		ops++
	}
	if err := reader.Err(); err != nil {
		fail("%v", err)
	}
	s := dev.Stats()
	fmt.Printf("\nreplayed %d trace lines: %d bitwise ops, %d SROs, %d reallocations, elapsed %v\n",
		ops, s.BitwiseOps, s.SROs, s.Reallocations, dev.Elapsed())
}

func execute(dev *parabit.Device, line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "write":
		if len(fields) != 3 {
			return fmt.Errorf("write wants <lpn> <hex>")
		}
		lpn, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return err
		}
		data, err := fillPage(fields[2], dev.PageSize())
		if err != nil {
			return err
		}
		return dev.Write(lpn, data)
	case "pair":
		if len(fields) != 5 {
			return fmt.Errorf("pair wants <lpnA> <lpnB> <hexA> <hexB>")
		}
		a, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return err
		}
		b, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return err
		}
		da, err := fillPage(fields[3], dev.PageSize())
		if err != nil {
			return err
		}
		db, err := fillPage(fields[4], dev.PageSize())
		if err != nil {
			return err
		}
		return dev.WriteOperandPair(a, b, da, db)
	case "group":
		if len(fields) != 3 {
			return fmt.Errorf("group wants <lpns> <hexes>")
		}
		lpns, err := parseLPNs(fields[1])
		if err != nil {
			return err
		}
		var data [][]byte
		for _, h := range strings.Split(fields[2], ",") {
			page, err := fillPage(h, dev.PageSize())
			if err != nil {
				return err
			}
			data = append(data, page)
		}
		if len(data) != len(lpns) {
			return fmt.Errorf("%d lpns but %d patterns", len(lpns), len(data))
		}
		return dev.WriteOperandGroup(lpns, data)
	case "bitwise":
		if len(fields) != 5 {
			return fmt.Errorf("bitwise wants <op> <scheme> <lpnA> <lpnB>")
		}
		op, scheme, err := parseOpScheme(fields[1], fields[2])
		if err != nil {
			return err
		}
		a, err := strconv.ParseUint(fields[3], 10, 64)
		if err != nil {
			return err
		}
		b, err := strconv.ParseUint(fields[4], 10, 64)
		if err != nil {
			return err
		}
		r, err := dev.Bitwise(op, a, b, scheme)
		if err != nil {
			return err
		}
		fmt.Printf("bitwise %-8v %-16v -> %x... in %v\n", op, scheme, r.Data[:4], r.Latency)
		return nil
	case "reduce":
		if len(fields) != 4 {
			return fmt.Errorf("reduce wants <op> <scheme> <lpns>")
		}
		op, scheme, err := parseOpScheme(fields[1], fields[2])
		if err != nil {
			return err
		}
		lpns, err := parseLPNs(fields[3])
		if err != nil {
			return err
		}
		r, err := dev.Reduce(op, lpns, scheme)
		if err != nil {
			return err
		}
		fmt.Printf("reduce  %-8v %-16v over %d operands -> %x... in %v\n",
			op, scheme, len(lpns), r.Data[:4], r.Latency)
		return nil
	}
	return fmt.Errorf("unknown trace verb %q", fields[0])
}

func parseOpScheme(opStr, schemeStr string) (parabit.Op, parabit.Scheme, error) {
	var op parabit.Op
	found := false
	for _, o := range parabit.Ops {
		if strings.EqualFold(o.String(), opStr) {
			op, found = o, true
		}
	}
	if !found {
		return 0, 0, fmt.Errorf("unknown op %q", opStr)
	}
	switch strings.ToLower(schemeStr) {
	case "prealloc", "parabit":
		return op, parabit.PreAllocated, nil
	case "realloc":
		return op, parabit.Reallocated, nil
	case "locfree":
		return op, parabit.LocationFree, nil
	}
	return 0, 0, fmt.Errorf("unknown scheme %q", schemeStr)
}

func parseLPNs(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fillPage(hexStr string, ps int) ([]byte, error) {
	pattern, err := hex.DecodeString(hexStr)
	if err != nil {
		return nil, err
	}
	if len(pattern) == 0 {
		return nil, fmt.Errorf("empty pattern")
	}
	out := make([]byte, ps)
	for i := range out {
		out[i] = pattern[i%len(pattern)]
	}
	return out, nil
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
