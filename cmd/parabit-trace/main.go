// parabit-trace replays a simple operation trace against the simulated
// SSD and reports per-operation and total modeled latency.
//
// Trace format (one op per line, '#' comments):
//
//	write   <lpn> <hexpattern>
//	pair    <lpnA> <lpnB> <hexA> <hexB>     # co-located operand pair
//	group   <lpn1,lpn2,...> <hex1,hex2,...> # aligned LSB group
//	bitwise <op> <scheme> <lpnA> <lpnB>
//	reduce  <op> <scheme> <lpn1,lpn2,...>
//	query   <scheme> <expr>                 # planned query, e.g. (1 & 2) | !3
//	flush                                   # drain the queue, print the clock
//	stats                                   # print a mid-trace stats snapshot
//	faults  <plan.json>                     # arm a fault-injection plan
//	faults  off                             # disarm fault injection
//
// Usage:
//
//	parabit-trace -f trace.txt
//	parabit-trace -demo              # run a built-in demonstration trace
//	parabit-trace -demo -trace t.json # also export a Chrome trace-event file
//
// Every replay runs with telemetry attached and ends with a per-op span
// breakdown: count, mean and p50/p95/p99 of each command kind's modeled
// service latency.
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"parabit"
	"parabit/internal/sim"
	"parabit/internal/telemetry"
)

const demoTrace = `# demonstration: pre-allocated pair, then a location-free reduction
pair 0 1 a5 3c
bitwise AND prealloc 0 1
bitwise XOR prealloc 0 1
group 10,11,12,13 ff,0f,33,55
reduce AND locfree 10,11,12,13
reduce XOR locfree 10,11,12,13
query locfree (10 & 11 & 12) | 13
query locfree (10 & 11 & 12) | 13
flush
stats
`

func main() {
	file := flag.String("f", "", "trace file to replay")
	demo := flag.Bool("demo", false, "replay the built-in demo trace")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file of the replay here")
	flag.Parse()

	var reader *bufio.Scanner
	switch {
	case *demo:
		reader = bufio.NewScanner(strings.NewReader(demoTrace))
	case *file != "":
		f, err := os.Open(*file)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		reader = bufio.NewScanner(f)
	default:
		flag.Usage()
		os.Exit(2)
	}

	dev, err := parabit.NewDevice(parabit.WithSmallGeometry())
	if err != nil {
		fail("%v", err)
	}
	sink := dev.EnableTelemetry(*tracePath != "")

	lineNo := 0
	ops := 0
	for reader.Scan() {
		lineNo++
		line := strings.TrimSpace(reader.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := execute(dev, line); err != nil {
			fail("line %d: %v", lineNo, err)
		}
		ops++
	}
	if err := reader.Err(); err != nil {
		fail("%v", err)
	}
	s := dev.Stats()
	fmt.Printf("\nreplayed %d trace lines: %d bitwise ops, %d SROs, %d reallocations, elapsed %v\n",
		ops, s.BitwiseOps, s.SROs, s.Reallocations, dev.Elapsed())
	printBreakdown(os.Stdout, sink)
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail("%v", err)
		}
		if err := dev.WriteTrace(f); err != nil {
			fail("%v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
		fmt.Printf("trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *tracePath)
	}
}

// printBreakdown reports each command kind's span latencies: how many
// commands ran and the shape of their modeled service time.
func printBreakdown(w io.Writer, sink *telemetry.Sink) {
	const prefix = "sched.latency."
	header := false
	sink.EachHistogram(func(name string, h *telemetry.Histogram) {
		if h.Count() == 0 || !strings.HasPrefix(name, prefix) {
			return
		}
		if !header {
			fmt.Fprintln(w, "\nper-op span breakdown (virtual time):")
			fmt.Fprintln(w, "  kind            count      mean       p50       p95       p99")
			header = true
		}
		mean := sim.Duration(int64(h.Sum()) / h.Count())
		fmt.Fprintf(w, "  %-14s %6d %9v %9v %9v %9v\n",
			strings.TrimPrefix(name, prefix), h.Count(), mean,
			h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
	})
}

func execute(dev *parabit.Device, line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "write":
		if len(fields) != 3 {
			return fmt.Errorf("write wants <lpn> <hex>")
		}
		lpn, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return err
		}
		data, err := fillPage(fields[2], dev.PageSize())
		if err != nil {
			return err
		}
		return dev.Write(lpn, data)
	case "pair":
		if len(fields) != 5 {
			return fmt.Errorf("pair wants <lpnA> <lpnB> <hexA> <hexB>")
		}
		a, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return err
		}
		b, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return err
		}
		da, err := fillPage(fields[3], dev.PageSize())
		if err != nil {
			return err
		}
		db, err := fillPage(fields[4], dev.PageSize())
		if err != nil {
			return err
		}
		return dev.WriteOperandPair(a, b, da, db)
	case "group":
		if len(fields) != 3 {
			return fmt.Errorf("group wants <lpns> <hexes>")
		}
		lpns, err := parseLPNs(fields[1])
		if err != nil {
			return err
		}
		var data [][]byte
		for _, h := range strings.Split(fields[2], ",") {
			page, err := fillPage(h, dev.PageSize())
			if err != nil {
				return err
			}
			data = append(data, page)
		}
		if len(data) != len(lpns) {
			return fmt.Errorf("%d lpns but %d patterns", len(lpns), len(data))
		}
		return dev.WriteOperandGroup(lpns, data)
	case "bitwise":
		if len(fields) != 5 {
			return fmt.Errorf("bitwise wants <op> <scheme> <lpnA> <lpnB>")
		}
		op, scheme, err := parseOpScheme(fields[1], fields[2])
		if err != nil {
			return err
		}
		a, err := strconv.ParseUint(fields[3], 10, 64)
		if err != nil {
			return err
		}
		b, err := strconv.ParseUint(fields[4], 10, 64)
		if err != nil {
			return err
		}
		r, err := dev.Bitwise(op, a, b, scheme)
		if err != nil {
			return err
		}
		fmt.Printf("bitwise %-8v %-16v -> %x... in %v\n", op, scheme, r.Data[:4], r.Latency)
		return nil
	case "flush":
		if len(fields) != 1 {
			return fmt.Errorf("flush takes no arguments")
		}
		dev.Flush()
		fmt.Printf("flush   queue drained, clock at %v\n", dev.Elapsed())
		return nil
	case "stats":
		if len(fields) != 1 {
			return fmt.Errorf("stats takes no arguments")
		}
		s := dev.Stats()
		fmt.Printf("stats   %d bitwise (%d fallbacks, %d reallocs), %d SROs, %d programs, "+
			"gc %d runs/%d pages, reclaim %d/%d, wl %d/%d, WA %.3f\n",
			s.BitwiseOps, s.Fallbacks, s.Reallocations, s.SROs, s.Programs,
			s.GCRuns, s.GCPagesMoved, s.ReadReclaims, s.ReclaimPagesMoved,
			s.StaticWLMoves, s.WLPagesMoved, s.WriteAmplification)
		if fs := dev.FaultStats(); fs.Injected > 0 || fs.JitterEvents > 0 {
			fmt.Printf("faults  %d injected (%d transient, %d dead, %d program, %d erase, %d stuck), "+
				"%d jitter, %d retries (%d exhausted), %d blocks retired (%d pages rescued, %d re-steered)\n",
				fs.Injected, fs.PlaneTransient, fs.PlaneDead, fs.ProgramFails, fs.EraseFails,
				fs.StuckBlock, fs.JitterEvents, fs.Retries, fs.RetriesExhausted,
				fs.BlocksRetired, fs.RetirePagesMoved, fs.ResteeredWrites)
		}
		return nil
	case "faults":
		if len(fields) != 2 {
			return fmt.Errorf("faults wants <plan.json> or off")
		}
		if fields[1] == "off" {
			dev.ClearFaultPlan()
			fmt.Println("faults  injection disarmed")
			return nil
		}
		if err := dev.InstallFaultPlanFile(fields[1]); err != nil {
			return err
		}
		fmt.Printf("faults  plan %s armed\n", fields[1])
		return nil
	case "query":
		if len(fields) < 3 {
			return fmt.Errorf("query wants <scheme> <expr>")
		}
		scheme, err := parseScheme(fields[1])
		if err != nil {
			return err
		}
		q, err := parabit.ParseQuery(strings.Join(fields[2:], " "))
		if err != nil {
			return err
		}
		r, err := dev.Query(q, scheme)
		if err != nil {
			return err
		}
		qs := dev.QueryStats()
		fmt.Printf("query   %-16v %s -> %x... in %v (%d fused chains, %d cache hits so far)\n",
			scheme, q, r.Data[:4], r.Latency, qs.FusedChains, qs.CacheHits)
		return nil
	case "reduce":
		if len(fields) != 4 {
			return fmt.Errorf("reduce wants <op> <scheme> <lpns>")
		}
		op, scheme, err := parseOpScheme(fields[1], fields[2])
		if err != nil {
			return err
		}
		lpns, err := parseLPNs(fields[3])
		if err != nil {
			return err
		}
		r, err := dev.Reduce(op, lpns, scheme)
		if err != nil {
			return err
		}
		fmt.Printf("reduce  %-8v %-16v over %d operands -> %x... in %v\n",
			op, scheme, len(lpns), r.Data[:4], r.Latency)
		return nil
	}
	return fmt.Errorf("unknown trace verb %q", fields[0])
}

func parseOpScheme(opStr, schemeStr string) (parabit.Op, parabit.Scheme, error) {
	var op parabit.Op
	found := false
	for _, o := range parabit.Ops {
		if strings.EqualFold(o.String(), opStr) {
			op, found = o, true
		}
	}
	if !found {
		return 0, 0, fmt.Errorf("unknown op %q", opStr)
	}
	scheme, err := parseScheme(schemeStr)
	if err != nil {
		return 0, 0, err
	}
	return op, scheme, nil
}

func parseScheme(s string) (parabit.Scheme, error) {
	switch strings.ToLower(s) {
	case "prealloc", "parabit":
		return parabit.PreAllocated, nil
	case "realloc":
		return parabit.Reallocated, nil
	case "locfree":
		return parabit.LocationFree, nil
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

func parseLPNs(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fillPage(hexStr string, ps int) ([]byte, error) {
	pattern, err := hex.DecodeString(hexStr)
	if err != nil {
		return nil, err
	}
	if len(pattern) == 0 {
		return nil, fmt.Errorf("empty pattern")
	}
	out := make([]byte, ps)
	for i := range out {
		out[i] = pattern[i%len(pattern)]
	}
	return out, nil
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
