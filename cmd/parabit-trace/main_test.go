package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parabit"
)

func traceDevice(t *testing.T) *parabit.Device {
	t.Helper()
	d, err := parabit.NewDevice(parabit.WithSmallGeometry())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestExecuteDemoTraceLines(t *testing.T) {
	d := traceDevice(t)
	for _, line := range strings.Split(strings.TrimSpace(demoTrace), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := execute(d, line); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
	// The demo runs 2 bitwise + 2 reduce; reductions count as single
	// chained ops under LocFree.
	if d.Stats().BitwiseOps == 0 {
		t.Fatal("no ops recorded")
	}
}

func TestExecuteRejectsMalformedLines(t *testing.T) {
	d := traceDevice(t)
	bad := []string{
		"write 1",              // missing pattern
		"write x a5",           // bad lpn
		"write 1 zz",           // bad hex
		"pair 1 2 a5",          // missing operand
		"bitwise AND nope 0 1", // bad scheme
		"bitwise WAT prealloc 0 1",
		"query locfree",    // missing expression
		"query nope 1 & 2", // bad scheme
		"query locfree 1 & & 2",
		"frobnicate 1 2 3",
		"group 1,2 a5", // count mismatch
	}
	for _, line := range bad {
		if err := execute(d, line); err == nil {
			t.Errorf("%q accepted", line)
		}
	}
}

func TestParseLPNs(t *testing.T) {
	lpns, err := parseLPNs("1,2,30")
	if err != nil || len(lpns) != 3 || lpns[2] != 30 {
		t.Fatalf("parseLPNs: %v %v", lpns, err)
	}
	if _, err := parseLPNs("1,x"); err == nil {
		t.Error("bad lpn accepted")
	}
}

func TestTraceSequencesCompose(t *testing.T) {
	// pair -> bitwise -> group -> reduce, with data checked via verbs.
	d := traceDevice(t)
	script := []string{
		"pair 0 1 ff 0f",
		"bitwise AND prealloc 0 1",
		"group 4,5,6 ff,f0,cc",
		"reduce AND locfree 4,5,6",
	}
	for _, line := range script {
		if err := execute(d, line); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
}

// TestQueryDirective drives the planner through the trace language: a
// multi-op expression with spaces, repeated so the second run can hit the
// result cache.
func TestQueryDirective(t *testing.T) {
	d := traceDevice(t)
	script := []string{
		"group 4,5,6,7 ff,f0,cc,aa",
		"query locfree (4 & 5 & 6) | 7",
		"query locfree (4 & 5 & 6) | 7",
	}
	for _, line := range script {
		if err := execute(d, line); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
	qs := d.QueryStats()
	if qs.Queries != 2 || qs.FusedChains == 0 {
		t.Errorf("query directive bypassed the planner: %+v", qs)
	}
	if qs.CacheHits == 0 {
		t.Errorf("repeated query never hit the cache: %+v", qs)
	}

	// Single-operand degenerate query: resolves to a plain read.
	if err := execute(d, "query locfree 4"); err != nil {
		t.Errorf("leaf query rejected: %v", err)
	}
}

func TestFlushAndStatsDirectives(t *testing.T) {
	d := traceDevice(t)
	script := []string{
		"pair 0 1 a5 3c",
		"flush",
		"bitwise AND prealloc 0 1",
		"stats",
		"flush",
	}
	for _, line := range script {
		if err := execute(d, line); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
	if d.Stats().BitwiseOps != 1 {
		t.Errorf("stats after directives: %+v", d.Stats())
	}
	bad := []string{"flush now", "stats all"}
	for _, line := range bad {
		if err := execute(d, line); err == nil {
			t.Errorf("%q accepted", line)
		}
	}
}

func TestFaultsDirective(t *testing.T) {
	d := traceDevice(t)
	dir := t.TempDir()
	planPath := filepath.Join(dir, "plan.json")
	plan := `{"seed": 3, "rules": [{"type": "stuck-block", "plane": 0, "block": 0}]}`
	if err := os.WriteFile(planPath, []byte(plan), 0o644); err != nil {
		t.Fatal(err)
	}
	script := []string{
		"faults " + planPath,
		"pair 0 1 a5 3c",
		"bitwise AND prealloc 0 1",
		"stats",
		"faults off",
	}
	for _, line := range script {
		if err := execute(d, line); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
	if fs := d.FaultStats(); fs.StuckBlock == 0 || fs.BlocksRetired == 0 {
		t.Errorf("stuck block never hit or retired: %+v", fs)
	}
	bad := []string{
		"faults",
		"faults " + filepath.Join(dir, "missing.json"),
		"faults too many args",
	}
	for _, line := range bad {
		if err := execute(d, line); err == nil {
			t.Errorf("%q accepted", line)
		}
	}
}

func TestPrintBreakdownReportsOpKinds(t *testing.T) {
	d := traceDevice(t)
	sink := d.EnableTelemetry(false)
	for _, line := range []string{
		"pair 0 1 a5 3c",
		"bitwise AND prealloc 0 1",
		"bitwise XOR prealloc 0 1",
	} {
		if err := execute(d, line); err != nil {
			t.Fatal(err)
		}
	}
	d.Flush()
	var buf bytes.Buffer
	printBreakdown(&buf, sink)
	out := buf.String()
	for _, want := range []string{"per-op span breakdown", "write-pair", "bitwise", "p50", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "read ") {
		t.Errorf("breakdown lists an idle kind:\n%s", out)
	}
}
