package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"parabit/internal/cluster"
	"parabit/internal/plan"
	"parabit/internal/sim"
	"parabit/internal/ssd"
	"parabit/internal/telemetry"
	"parabit/internal/wallclock"
	"parabit/internal/workload"
)

// The cluster benchmark serves the §5.3.2 bitmap workload from a sharded
// multi-device cluster two ways:
//
//   - deterministic (-cluster): one serial query stream over a seeded
//     bitmap, producing the BENCH_cluster.json report CI diffs — overall
//     and per-shard latency percentiles, route mix (shard-local, wire,
//     scatter/gather) and read skew;
//   - hammer (-hammer -cluster N): concurrent multi-tenant load with
//     per-tenant QoS armed, reporting per-kind outcome counts (ok,
//     rate-rejected, queue-rejected, unavailable, error) separately from
//     the latency percentiles, plus per-shard lanes and skew.
//
// Both load the bitmap chunk-placed, so cross-day reductions route
// shard-locally while cross-chunk queries must scatter.

const (
	clusterSeed = 1
	// clusterP99Tolerance is the CI gate: measured overall p99 may exceed
	// the checked-in report's by at most this factor.
	clusterP99Tolerance = 1.10
	// clusterReclaimEvery bounds controller-internal page growth during
	// long query streams.
	clusterReclaimEvery = 64
)

// clusterShardReport is one shard's lane in the JSON report.
type clusterShardReport struct {
	ID     int     `json:"id"`
	Reads  int64   `json:"reads"`
	Writes int64   `json:"writes"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
}

// clusterReport is the BENCH_cluster.json schema.
type clusterReport struct {
	Shards       int                  `json:"shards"`
	Replicas     int                  `json:"replicas"`
	Users        int64                `json:"users"`
	Days         int                  `json:"days"`
	Chunks       int                  `json:"chunks"`
	Queries      int                  `json:"queries"`
	Seed         int64                `json:"seed"`
	Skew         float64              `json:"skew"`
	Scheme       string               `json:"scheme"`
	P50US        float64              `json:"p50_us"`
	P95US        float64              `json:"p95_us"`
	P99US        float64              `json:"p99_us"`
	RouteLocal   int64                `json:"route_local"`
	RouteWire    int64                `json:"route_wire"`
	RouteScatter int64                `json:"route_scatter"`
	ReadSkew     float64              `json:"read_skew"`
	PerShard     []clusterShardReport `json:"per_shard"`
}

// benchCluster builds a chunk-placed cluster serving the generated
// bitmap, with telemetry attached to sink (trace lanes register at
// SetTelemetry time, so enable tracing on the sink before calling).
func benchCluster(sink *telemetry.Sink, shards, replicas int, users int64, days int, skew float64) (*cluster.Cluster, *cluster.BitmapService, error) {
	spec := workload.CustomBitmap(users, days, skew)
	c, err := cluster.New(cluster.Config{
		Shards:      shards,
		Replicas:    replicas,
		PlacementOf: cluster.PlacementByChunk,
	})
	if err != nil {
		return nil, nil, err
	}
	c.SetTelemetry(sink)
	svc, err := cluster.NewBitmapService(c, spec)
	if err != nil {
		return nil, nil, err
	}
	data, err := workload.GenerateBitmap(spec, clusterSeed)
	if err != nil {
		return nil, nil, err
	}
	if err := svc.Load("loader", data); err != nil {
		return nil, nil, err
	}
	return c, svc, nil
}

// pickDays samples k distinct day columns with the spec's skew.
func pickDays(sample func() int, days, k int) []int {
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		d := sample()
		if d >= days || seen[d] {
			continue
		}
		seen[d] = true
		out = append(out, d)
	}
	return out
}

func simSide(lats []sim.Duration) (p50, p95, p99 float64) {
	if len(lats) == 0 {
		return 0, 0, 0
	}
	sorted := append([]sim.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		return sorted[int(q*float64(len(sorted)-1))].Micros()
	}
	return at(0.50), at(0.95), at(0.99)
}

// shardReports reads the per-shard lanes out of the scoped telemetry.
func shardReports(c *cluster.Cluster, sink *telemetry.Sink) ([]clusterShardReport, float64) {
	var out []clusterShardReport
	var reads []int64
	c.EachShard(func(sh *cluster.Shard) {
		h := sink.Histogram(fmt.Sprintf("shard%d.sched.latency.query", sh.ID()))
		qs := h.Quantiles(0.50, 0.95, 0.99)
		out = append(out, clusterShardReport{
			ID:     sh.ID(),
			Reads:  sh.Reads(),
			Writes: sh.Writes(),
			P50US:  qs[0].Micros(),
			P95US:  qs[1].Micros(),
			P99US:  qs[2].Micros(),
		})
		reads = append(reads, sh.Reads())
	})
	var max, sum int64
	for _, r := range reads {
		sum += r
		if r > max {
			max = r
		}
	}
	skew := 0.0
	if sum > 0 {
		skew = float64(max) * float64(len(reads)) / float64(sum)
	}
	return out, skew
}

// runClusterBench is the deterministic mode: a serial seeded query stream
// whose JSON report is byte-stable run over run.
func runClusterBench(shards, replicas int, users int64, days int, skew float64, queries int, outPath, checkPath string, w io.Writer) error {
	scheme := ssd.SchemeLocFree
	sink := telemetry.New()
	c, svc, err := benchCluster(sink, shards, replicas, users, days, skew)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(clusterSeed))
	sample := workload.CustomBitmap(users, days, skew).DaySampler(rng)
	chunks := svc.Chunks()

	lats := make([]sim.Duration, 0, queries)
	for i := 0; i < queries; i++ {
		// Every fifth query runs under Flash-Cosmos: columns are placed by
		// the normal write path, so these exercise the FC colocation-miss
		// fallback end to end through the serving layer and NVMe wire.
		qScheme := scheme
		if i%5 == 2 {
			qScheme = ssd.SchemeFlashCosmos
		}
		var q *plan.Expr
		if chunks > 1 && i%4 == 3 {
			// Cross-chunk query: operands live in different placement
			// groups, so the front end must scatter and combine host-side.
			a, b := rng.Intn(chunks), rng.Intn(chunks)
			for b == a {
				b = rng.Intn(chunks)
			}
			d := pickDays(sample, days, 2)
			q = plan.Or(
				plan.Leaf(cluster.ColumnKey(a, d[0])),
				plan.Leaf(cluster.ColumnKey(b, d[1])))
		} else {
			// Chunk-local cross-day reduction, the serving hot path.
			chunk := rng.Intn(chunks)
			ds := pickDays(sample, days, 2+rng.Intn(3))
			leaves := make([]*plan.Expr, len(ds))
			for j, d := range ds {
				leaves[j] = plan.Leaf(cluster.ColumnKey(chunk, d))
			}
			q = plan.And(leaves...)
		}
		res, err := c.Query("bench", q, qScheme)
		if err != nil {
			return fmt.Errorf("cluster bench query %d: %w", i, err)
		}
		lats = append(lats, res.Elapsed)
		if (i+1)%clusterReclaimEvery == 0 {
			c.Reclaim()
		}
	}

	rep := clusterReport{
		Shards:       shards,
		Replicas:     replicas,
		Users:        users,
		Days:         days,
		Chunks:       chunks,
		Queries:      queries,
		Seed:         clusterSeed,
		Skew:         skew,
		Scheme:       fmt.Sprintf("%v+%v", scheme, ssd.SchemeFlashCosmos),
		RouteLocal:   sink.Counter("cluster.route.local").Value(),
		RouteWire:    sink.Counter("cluster.route.wire").Value(),
		RouteScatter: sink.Counter("cluster.route.scatter").Value(),
	}
	rep.P50US, rep.P95US, rep.P99US = simSide(lats)
	rep.PerShard, rep.ReadSkew = shardReports(c, sink)

	fmt.Fprintf(w, "cluster: %d shards x%d replicas, %d users, %d day columns in %d chunks\n",
		shards, replicas, users, days, chunks)
	fmt.Fprintf(w, "  %d queries (skew %.2f): p50 %.1fus p95 %.1fus p99 %.1fus\n",
		queries, skew, rep.P50US, rep.P95US, rep.P99US)
	fmt.Fprintf(w, "  routes: %d local, %d wire, %d scatter; read skew %.2fx\n",
		rep.RouteLocal, rep.RouteWire, rep.RouteScatter, rep.ReadSkew)
	fmt.Fprintln(w, "  per-shard: id reads writes p50 p95 p99")
	for _, s := range rep.PerShard {
		fmt.Fprintf(w, "    %2d %8d %8d %9.1fus %9.1fus %9.1fus\n",
			s.ID, s.Reads, s.Writes, s.P50US, s.P95US, s.P99US)
	}

	if outPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "report written to %s\n", outPath)
	}
	if checkPath != "" {
		if err := checkClusterReport(rep, checkPath); err != nil {
			return err
		}
		fmt.Fprintf(w, "report matches %s (within %.0f%% on p99)\n",
			checkPath, (clusterP99Tolerance-1)*100)
	}
	return nil
}

// checkClusterReport is the CI gate: same workload parameters, overall
// p99 within tolerance, and both shard-local and scatter routing still
// exercised.
func checkClusterReport(got clusterReport, path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want clusterReport
	if err := json.Unmarshal(blob, &want); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if got.Shards != want.Shards || got.Replicas != want.Replicas ||
		got.Users != want.Users || got.Days != want.Days ||
		got.Queries != want.Queries || got.Seed != want.Seed ||
		got.Skew != want.Skew || got.Scheme != want.Scheme {
		return fmt.Errorf("workload drifted from %s (regenerate with -cluster -cluster-out)", path)
	}
	if limit := want.P99US * clusterP99Tolerance; got.P99US > limit {
		return fmt.Errorf("cluster p99 regressed: %.1fus measured vs %.1fus recorded (limit %.1fus)",
			got.P99US, want.P99US, limit)
	}
	if got.RouteLocal+got.RouteWire == 0 || got.RouteScatter == 0 {
		return fmt.Errorf("routing degenerated: %d local, %d wire, %d scatter — both shard-local and scatter paths must stay exercised",
			got.RouteLocal, got.RouteWire, got.RouteScatter)
	}
	return nil
}

// clusterOutcome indexes the hammer's per-kind outcome counters.
type clusterOutcome int

const (
	outcomeOK clusterOutcome = iota
	outcomeRejectedRate
	outcomeRejectedQueue
	outcomeUnavailable
	outcomeError
	numOutcomes
)

var outcomeNames = [numOutcomes]string{"ok", "rejected-rate", "rejected-queue", "unavailable", "error"}

// classify maps an operation error to its outcome bucket.
func classify(err error) clusterOutcome {
	if err == nil {
		return outcomeOK
	}
	var ae *cluster.AdmissionError
	if errors.As(err, &ae) {
		if ae.Reason == "queue" {
			return outcomeRejectedQueue
		}
		return outcomeRejectedRate
	}
	if errors.Is(err, cluster.ErrUnavailable) {
		return outcomeUnavailable
	}
	return outcomeError
}

// runClusterHammer drives the cluster from n concurrent clients spread
// over several tenants, half of them QoS-capped, against millions of
// simulated users. Outcome counts are per kind and separate from the
// latency percentiles, which come from the per-shard telemetry lanes.
func runClusterHammer(n, ops, shards, replicas, tenants int, users int64, days int, skew float64, tracePath string, metrics bool, w io.Writer) error {
	scheme := ssd.SchemeLocFree
	sink := telemetry.New()
	if tracePath != "" {
		sink.EnableTrace()
	}
	c, svc, err := benchCluster(sink, shards, replicas, users, days, skew)
	if err != nil {
		return err
	}
	if tenants < 1 {
		tenants = 1
	}
	// Odd tenants run capped: the rate limit rejects once the burst is
	// spent (virtual time advances far slower than op count), and the
	// in-flight bound sheds concurrent pile-ups.
	for t := 0; t < tenants; t++ {
		if t%2 == 1 {
			c.SetTenantQoS(fmt.Sprintf("tenant%d", t),
				cluster.QoS{OpsPerSec: 2000, Burst: 20 + 10*t, MaxInFlight: 4})
		}
	}
	chunks := svc.Chunks()

	// kinds: 0 query, 1 read, 2 write
	kindNames := []string{"query", "read", "write"}
	var outcomes [3][numOutcomes]atomic.Int64
	wallStart := wallclock.Start()
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for cl := 0; cl < n; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant%d", cl%tenants)
			// Odd clients query under Flash-Cosmos so the multi-tenant mix
			// keeps both the MWS dispatch and its fallback paths hot.
			scheme := scheme
			if cl%2 == 1 {
				scheme = ssd.SchemeFlashCosmos
			}
			rng := rand.New(rand.NewSource(int64(1000 + cl)))
			sample := workload.CustomBitmap(users, days, skew).DaySampler(rng)
			// Skew the chunk axis with the same Zipf: days of one chunk
			// are colocated, so only hot *chunks* make hot replica sets —
			// the hot-shard effect the EXPERIMENTS recipe measures.
			chunkPick := workload.CustomBitmap(users, chunks, skew).DaySampler(rng)
			page := make([]byte, c.PageSize())
			for i := 0; i < ops; i++ {
				var kind int
				var err error
				switch rng.Intn(4) {
				case 0, 1:
					kind = 0
					chunk := chunkPick()
					ds := pickDays(sample, days, 2)
					_, err = c.Query(tenant, plan.And(
						plan.Leaf(cluster.ColumnKey(chunk, ds[0])),
						plan.Leaf(cluster.ColumnKey(chunk, ds[1]))), scheme)
				case 2:
					kind = 1
					_, _, err = c.ReadColumn(tenant, cluster.ColumnKey(chunkPick(), sample()))
				case 3:
					kind = 2
					rng.Read(page)
					_, err = c.WriteColumn(tenant, cluster.ColumnKey(chunkPick(), sample()), page)
				}
				out := classify(err)
				outcomes[kind][out].Add(1)
				if out == outcomeError {
					errCh <- fmt.Errorf("client %d (%s): %w", cl, kindNames[kind], err)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}
	wall := wallStart.Elapsed()

	fmt.Fprintf(w, "cluster hammer: %d clients x %d ops over %d tenants, %d shards x%d replicas in %v wall\n",
		n, ops, tenants, shards, replicas, wall.Round(time.Millisecond))
	fmt.Fprintf(w, "  bitmap             %d users, %d day columns in %d chunks (skew %.2f)\n",
		users, days, chunks, skew)
	fmt.Fprintf(w, "  virtual clock      %v\n", sim.Duration(c.Now()).Std())
	fmt.Fprintln(w, "  per-kind outcomes: kind ok rejected-rate rejected-queue unavailable error")
	for k, name := range kindNames {
		fmt.Fprintf(w, "    %-6s", name)
		for o := clusterOutcome(0); o < numOutcomes; o++ {
			fmt.Fprintf(w, " %12d", outcomes[k][o].Load())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "  per-shard lanes: id reads writes query-p50 query-p95 query-p99 qp-drained")
	shardReps, skewX := shardReports(c, sink)
	c.EachShard(func(sh *cluster.Shard) {
		for _, s := range shardReps {
			if s.ID != sh.ID() {
				continue
			}
			fmt.Fprintf(w, "    %2d %8d %8d %9.1fus %9.1fus %9.1fus %10d\n",
				s.ID, s.Reads, s.Writes, s.P50US, s.P95US, s.P99US, sh.QueuePair().Stats().Drained)
		}
	})
	fmt.Fprintf(w, "  read skew          %.2fx (hottest shard vs mean)\n", skewX)
	fmt.Fprintf(w, "  admission          %d rate-rejected, %d queue-rejected (typed, not errors)\n",
		sink.Counter("cluster.admission.rejected.rate").Value(),
		sink.Counter("cluster.admission.rejected.queue").Value())
	if metrics {
		fmt.Fprintln(w, "\nmetrics:")
		sink.WriteMetrics(w)
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := sink.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "\ntrace written to %s (one lane set per shard)\n", tracePath)
	}
	return nil
}
