package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"time"

	"parabit"
)

// The planner benchmark runs one deterministic multi-op query workload two
// ways and compares per-query latency tails:
//
//   - fused: through Device.Query — the planner fuses associative chains
//     into single multi-operand latch programs, shares repeated
//     sub-queries, and serves hot intermediates from the controller-DRAM
//     result cache;
//   - unfused: every internal node as a separate two-operand command, with
//     each intermediate written back to flash before it can participate in
//     the next operation — the baseline an SSD without the planner pays.
//
// Both runs execute the identical query list on identically loaded
// devices, so the p99 gap is the planner's doing. The simulation is
// deterministic: the same binary produces the same JSON report every run,
// which is what lets CI diff it against the checked-in BENCH_planner.json.

const (
	plannerSeed    = 1
	plannerQueries = 160
	// plannerGroup is the size of each aligned LSB operand group; the
	// workload draws chains from within a group so location-free fusion
	// has its aligned wordlines.
	plannerGroup = 8
	// plannerScratchBase is where the unfused baseline parks write-back
	// intermediates, clear of the operand groups.
	plannerScratchBase = 1000
	// plannerP99Tolerance is the CI gate: the measured fused p99 may
	// exceed the checked-in report's by at most this factor.
	plannerP99Tolerance = 1.10
)

// qnode is the benchmark's own expression shape, convertible both to a
// parabit.Query (fused run) and to the serial op-by-op schedule of the
// unfused baseline.
type qnode struct {
	leaf bool
	lpn  uint64
	op   parabit.Op
	kids []*qnode
}

func qleaf(lpn uint64) *qnode { return &qnode{leaf: true, lpn: lpn} }

func qop(op parabit.Op, kids ...*qnode) *qnode { return &qnode{op: op, kids: kids} }

func (n *qnode) query() parabit.Query {
	if n.leaf {
		return parabit.QueryLPN(n.lpn)
	}
	qs := make([]parabit.Query, len(n.kids))
	for i, k := range n.kids {
		qs[i] = k.query()
	}
	switch n.op {
	case parabit.And:
		return parabit.QueryAnd(qs...)
	case parabit.Or:
		return parabit.QueryOr(qs...)
	default:
		return parabit.QueryXor(qs...)
	}
}

// plannerWorkload builds the deterministic query list: fusable chains of
// several lengths, nested trees, and a recurring hot conjunction that
// gives the result cache something to serve.
func plannerWorkload(rng *rand.Rand) []*qnode {
	group := func(g int) func() uint64 {
		base := uint64(g * plannerGroup)
		return func() uint64 { return base + uint64(rng.Intn(plannerGroup)) }
	}
	// Distinct LPNs from one group, so chains fold distinct wordlines.
	pick := func(g, k int) []*qnode {
		next := group(g)
		seen := map[uint64]bool{}
		var out []*qnode
		for len(out) < k {
			lpn := next()
			if seen[lpn] {
				continue
			}
			seen[lpn] = true
			out = append(out, qleaf(lpn))
		}
		return out
	}
	assoc := []parabit.Op{parabit.And, parabit.Or, parabit.Xor}
	queries := make([]*qnode, 0, plannerQueries)
	for len(queries) < plannerQueries {
		switch rng.Intn(5) {
		case 0:
			// The hot sub-query: identical every time it appears, so after
			// its first computation the cache answers.
			queries = append(queries, qop(parabit.And, qleaf(0), qleaf(1), qleaf(2), qleaf(3)))
		case 1:
			queries = append(queries, qop(parabit.And, pick(rng.Intn(2), 3+rng.Intn(4))...))
		case 2:
			queries = append(queries, qop(parabit.Or, pick(rng.Intn(2), 3+rng.Intn(2))...))
		case 3:
			queries = append(queries, qop(parabit.Xor, pick(rng.Intn(2), 3)...))
		case 4:
			op := assoc[rng.Intn(len(assoc))]
			queries = append(queries, qop(op,
				qop(parabit.And, pick(0, 3)...),
				qop(parabit.Or, pick(1, 2)...)))
		}
	}
	return queries
}

// plannerDevice builds one device with the two operand groups loaded in
// the scheme's native layout: block-colocated ESP groups for
// Flash-Cosmos, aligned LSB groups for everything else.
func plannerDevice(rng *rand.Rand, scheme parabit.Scheme) (*parabit.Device, error) {
	dev, err := parabit.NewDevice(parabit.WithSmallGeometry())
	if err != nil {
		return nil, err
	}
	for g := 0; g < 2; g++ {
		lpns := make([]uint64, plannerGroup)
		data := make([][]byte, plannerGroup)
		for i := range lpns {
			lpns[i] = uint64(g*plannerGroup + i)
			page := make([]byte, dev.PageSize())
			rng.Read(page)
			data[i] = page
		}
		if scheme == parabit.FlashCosmos {
			err = dev.WriteOperandMWSGroup(lpns, data)
		} else {
			err = dev.WriteOperandGroup(lpns, data)
		}
		if err != nil {
			return nil, err
		}
	}
	return dev, nil
}

// unfusedRunner executes a query as the planner-less baseline would: one
// two-operand command per internal fold, every intermediate written back
// to a scratch operand page first.
type unfusedRunner struct {
	dev     *parabit.Device
	scratch uint64
}

func (u *unfusedRunner) park(data []byte) (uint64, time.Duration, error) {
	u.scratch++
	r, err := u.dev.WriteOperandAsync(u.scratch, data).Wait()
	if err != nil {
		return 0, 0, err
	}
	return u.scratch, r.Latency, nil
}

func (u *unfusedRunner) eval(n *qnode, scheme parabit.Scheme) ([]byte, time.Duration, error) {
	if n.leaf {
		return nil, 0, fmt.Errorf("planner bench: bare-leaf query in workload")
	}
	var lat time.Duration
	lpns := make([]uint64, 0, len(n.kids))
	for _, k := range n.kids {
		if k.leaf {
			lpns = append(lpns, k.lpn)
			continue
		}
		data, l, err := u.eval(k, scheme)
		if err != nil {
			return nil, 0, err
		}
		lat += l
		lpn, wl, err := u.park(data)
		if err != nil {
			return nil, 0, err
		}
		lat += wl
		lpns = append(lpns, lpn)
	}
	cur, err := u.dev.Bitwise(n.op, lpns[0], lpns[1], scheme)
	if err != nil {
		return nil, 0, err
	}
	lat += cur.Latency
	for _, lpn := range lpns[2:] {
		s, wl, err := u.park(cur.Data)
		if err != nil {
			return nil, 0, err
		}
		lat += wl
		cur, err = u.dev.Bitwise(n.op, s, lpn, scheme)
		if err != nil {
			return nil, 0, err
		}
		lat += cur.Latency
	}
	return cur.Data, lat, nil
}

// plannerSide is one run's latency shape in the JSON report.
type plannerSide struct {
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P99US  float64 `json:"p99_us"`
}

// plannerReport is the BENCH_planner.json schema.
type plannerReport struct {
	Queries       int         `json:"queries"`
	Scheme        string      `json:"scheme"`
	Seed          int64       `json:"seed"`
	Fused         plannerSide `json:"fused"`
	Unfused       plannerSide `json:"unfused"`
	P99SpeedupX   float64     `json:"p99_speedup_x"`
	FusedChains   int64       `json:"fused_chains"`
	FusedOperands int64       `json:"fused_operands"`
	CacheHits     int64       `json:"cache_hits"`
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func side(lats []time.Duration) plannerSide {
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, l := range sorted {
		sum += l
	}
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return plannerSide{
		MeanUS: us(sum / time.Duration(len(sorted))),
		P50US:  us(quantile(sorted, 0.50)),
		P99US:  us(quantile(sorted, 0.99)),
	}
}

// runPlanner measures the workload both ways, cross-checks the results
// bit-for-bit, prints the comparison, and optionally writes the JSON
// report or gates against a checked-in one.
func runPlanner(scheme parabit.Scheme, outPath, checkPath string, w io.Writer) error {
	queries := plannerWorkload(rand.New(rand.NewSource(plannerSeed)))

	fusedDev, err := plannerDevice(rand.New(rand.NewSource(plannerSeed+1)), scheme)
	if err != nil {
		return err
	}
	unfusedDev, err := plannerDevice(rand.New(rand.NewSource(plannerSeed+1)), scheme)
	if err != nil {
		return err
	}
	baseline := &unfusedRunner{dev: unfusedDev, scratch: plannerScratchBase}

	fusedLats := make([]time.Duration, 0, len(queries))
	unfusedLats := make([]time.Duration, 0, len(queries))
	for i, q := range queries {
		fr, err := fusedDev.Query(q.query(), scheme)
		if err != nil {
			return fmt.Errorf("fused query %d: %w", i, err)
		}
		ud, ul, err := baseline.eval(q, scheme)
		if err != nil {
			return fmt.Errorf("unfused query %d: %w", i, err)
		}
		if !bytes.Equal(fr.Data, ud) {
			return fmt.Errorf("query %d: fused and unfused runs disagree (%q)", i, q.query())
		}
		fusedLats = append(fusedLats, fr.Latency)
		unfusedLats = append(unfusedLats, ul)
	}

	qs := fusedDev.QueryStats()
	rep := plannerReport{
		Queries:       len(queries),
		Scheme:        scheme.String(),
		Seed:          plannerSeed,
		Fused:         side(fusedLats),
		Unfused:       side(unfusedLats),
		FusedChains:   qs.FusedChains,
		FusedOperands: qs.FusedOperands,
		CacheHits:     qs.CacheHits,
	}
	if rep.Fused.P99US > 0 {
		rep.P99SpeedupX = rep.Unfused.P99US / rep.Fused.P99US
	}

	fmt.Fprintf(w, "planner: %d queries, scheme %v (virtual time)\n", rep.Queries, scheme)
	fmt.Fprintf(w, "  %-8s %10s %10s %10s\n", "", "mean", "p50", "p99")
	fmt.Fprintf(w, "  %-8s %9.1fus %9.1fus %9.1fus\n", "fused", rep.Fused.MeanUS, rep.Fused.P50US, rep.Fused.P99US)
	fmt.Fprintf(w, "  %-8s %9.1fus %9.1fus %9.1fus\n", "unfused", rep.Unfused.MeanUS, rep.Unfused.P50US, rep.Unfused.P99US)
	fmt.Fprintf(w, "  p99 speedup %.2fx; %d fused chains over %d operands, %d cache hits\n",
		rep.P99SpeedupX, rep.FusedChains, rep.FusedOperands, rep.CacheHits)

	if outPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "report written to %s\n", outPath)
	}
	if checkPath != "" {
		if err := checkPlannerReport(rep, checkPath); err != nil {
			return err
		}
		fmt.Fprintf(w, "report matches %s (within %.0f%% on fused p99)\n",
			checkPath, (plannerP99Tolerance-1)*100)
	}
	return nil
}

// checkPlannerReport is the CI gate: the fused p99 must not regress more
// than the tolerance over the checked-in report, and fusion must still be
// a win over the unfused baseline at the tail.
func checkPlannerReport(got plannerReport, path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want plannerReport
	if err := json.Unmarshal(blob, &want); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if got.Queries != want.Queries || got.Seed != want.Seed || got.Scheme != want.Scheme {
		return fmt.Errorf("workload drifted from %s: %d queries seed %d scheme %s vs recorded %d queries seed %d scheme %s (regenerate with -planner -planner-out)",
			path, got.Queries, got.Seed, got.Scheme, want.Queries, want.Seed, want.Scheme)
	}
	if limit := want.Fused.P99US * plannerP99Tolerance; got.Fused.P99US > limit {
		return fmt.Errorf("fused p99 regressed: %.1fus measured vs %.1fus recorded (limit %.1fus)",
			got.Fused.P99US, want.Fused.P99US, limit)
	}
	if got.Fused.P99US >= got.Unfused.P99US {
		return fmt.Errorf("fusion no longer wins at the tail: fused p99 %.1fus vs unfused %.1fus",
			got.Fused.P99US, got.Unfused.P99US)
	}
	return nil
}
