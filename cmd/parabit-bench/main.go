// parabit-bench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	parabit-bench -list             list available experiments
//	parabit-bench -run fig13a      regenerate one experiment
//	parabit-bench -run all         regenerate everything
//	parabit-bench -hammer=16       drive one device from 16 concurrent clients
//	parabit-bench -hammer -trace out.json -metrics
//	                                hammer with telemetry: write a Chrome
//	                                trace-event file and a metrics summary
//	parabit-bench -hammer -faults plan.json
//	                                hammer with a fault-injection plan armed;
//	                                ends with a fault/recovery summary
//	parabit-bench -planner          query-planner benchmark: the same query
//	                                workload fused (planner + cache) and
//	                                unfused (op-by-op with write-backs)
//	parabit-bench -planner -planner-check BENCH_planner.json
//	                                CI gate: fail on >10% fused-p99 regression
//	parabit-bench -cluster=4        deterministic sharded-cluster benchmark:
//	                                a seeded query stream over a chunk-placed
//	                                bitmap, with per-shard latency lanes and
//	                                the route mix (local/wire/scatter)
//	parabit-bench -cluster=4 -cluster-check BENCH_cluster.json
//	                                CI gate: fail on >10% cluster-p99 regression
//	parabit-bench -hammer=8 -cluster=4
//	                                concurrent multi-tenant cluster hammer with
//	                                QoS armed; reports per-kind outcome counts
//	                                (ok/rejected/unavailable) separately from
//	                                the latency percentiles
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"parabit"
	"parabit/internal/flash"
	"parabit/internal/sched"
	"parabit/internal/wallclock"
)

// defaultHammerClients is the client count a bare -hammer flag uses.
const defaultHammerClients = 8

// parseSchemeArg resolves a -scheme value: the short command-line aliases
// first, then the scheme registry's full names.
func parseSchemeArg(s string) (parabit.Scheme, bool) {
	switch s {
	case "prealloc":
		return parabit.PreAllocated, true
	case "realloc":
		return parabit.Reallocated, true
	case "locfree":
		return parabit.LocationFree, true
	case "flashcosmos", "fc":
		return parabit.FlashCosmos, true
	}
	sc, err := parabit.ParseScheme(s)
	return sc, err == nil
}

// defaultClusterShards is the shard count a bare -cluster flag uses.
const defaultClusterShards = 4

// clusterFlag accepts -cluster (bare, meaning defaultClusterShards) and
// -cluster=N.
type clusterFlag struct{ n int }

func (c *clusterFlag) String() string   { return strconv.Itoa(c.n) }
func (c *clusterFlag) IsBoolFlag() bool { return true }

func (c *clusterFlag) Set(v string) error {
	switch v {
	case "true":
		c.n = defaultClusterShards
		return nil
	case "false":
		c.n = 0
		return nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return fmt.Errorf("want a positive shard count, got %q", v)
	}
	c.n = n
	return nil
}

// hammerFlag accepts -hammer (bare, meaning defaultHammerClients),
// -hammer=N, and — rescued from the positional arguments after parsing —
// the historical two-token "-hammer N" form.
type hammerFlag struct{ n int }

func (h *hammerFlag) String() string   { return strconv.Itoa(h.n) }
func (h *hammerFlag) IsBoolFlag() bool { return true }

func (h *hammerFlag) Set(v string) error {
	switch v {
	case "true":
		h.n = defaultHammerClients
		return nil
	case "false":
		h.n = 0
		return nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return fmt.Errorf("want a positive client count, got %q", v)
	}
	h.n = n
	return nil
}

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "experiment id to run, or \"all\"")
	format := flag.String("format", "table", "output format: table or csv")
	var hammer hammerFlag
	flag.Var(&hammer, "hammer", "drive one device from N concurrent clients (bare flag: 8) and report scheduler stats")
	hammerOps := flag.Int("hammer-ops", 200, "operations per hammer client")
	tracePath := flag.String("trace", "", "hammer mode: write a Chrome trace-event JSON file here")
	metrics := flag.Bool("metrics", false, "hammer mode: print the telemetry metrics summary")
	faultsPath := flag.String("faults", "", "hammer mode: arm this JSON fault-injection plan")
	persistDir := flag.String("persist", "", "hammer mode: back the device with an on-disk store here; after the run, remount and report recovery")
	snapEvery := flag.Int("snapshot-every", 0, "with -persist: compact the journal after this many committed records (0 = default, negative disables)")
	planner := flag.Bool("planner", false, "run the query-planner benchmark: fused vs unfused p99")
	plannerOut := flag.String("planner-out", "", "planner mode: write the JSON report here (the BENCH_planner.json format)")
	plannerCheck := flag.String("planner-check", "", "planner mode: compare against this JSON report; fail on >10% fused-p99 regression")
	schemeName := flag.String("scheme", "locfree", "planner mode: placement scheme (prealloc, realloc, locfree, fc, or a registry name)")
	fc := flag.Bool("fc", false, "run the Flash-Cosmos benchmark: MWS vs chained-LocFree reduction sweep")
	fcOut := flag.String("fc-out", "", "fc mode: write the JSON report here (the BENCH_fc.json format)")
	fcCheck := flag.String("fc-check", "", "fc mode: compare against this JSON report; fail on >10% p99 regression, degenerate fallbacks, or a collapsed multi-operand win")
	var clusterShards clusterFlag
	flag.Var(&clusterShards, "cluster", "cluster mode: shard count (bare flag: 4); combine with -hammer for the concurrent multi-tenant hammer")
	users := flag.Int64("users", 2_000_000, "cluster mode: bitmap user count (column bits)")
	days := flag.Int("days", 6, "cluster mode: bitmap day-column count")
	skew := flag.Float64("skew", 1.2, "cluster mode: Zipf day-access skew (<=1 for uniform)")
	tenants := flag.Int("tenants", 4, "cluster hammer: tenant count (odd tenants run QoS-capped)")
	replicas := flag.Int("replicas", 2, "cluster mode: replicas per column")
	clusterQueries := flag.Int("cluster-queries", 240, "cluster mode: deterministic query count")
	clusterOut := flag.String("cluster-out", "", "cluster mode: write the JSON report here (the BENCH_cluster.json format)")
	clusterCheck := flag.String("cluster-check", "", "cluster mode: compare against this JSON report; fail on >10% p99 regression")
	flag.Parse()

	if *planner {
		scheme, ok := parseSchemeArg(*schemeName)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *schemeName)
			os.Exit(2)
		}
		if err := runPlanner(scheme, *plannerOut, *plannerCheck, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *fc {
		if err := runFC(*fcOut, *fcCheck, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if hammer.n > 0 {
		n := hammer.n
		// Rescue "-hammer 16": the bool-style flag left the count as a
		// positional argument, which also stopped flag parsing — consume
		// the count and re-parse whatever followed it.
		if flag.NArg() > 0 {
			if v, err := strconv.Atoi(flag.Arg(0)); err == nil && v > 0 {
				n = v
				if err := flag.CommandLine.Parse(flag.Args()[1:]); err != nil {
					os.Exit(2)
				}
			}
		}
		if clusterShards.n > 0 {
			err := runClusterHammer(n, *hammerOps, clusterShards.n, *replicas, *tenants,
				*users, *days, *skew, *tracePath, *metrics, os.Stdout)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		if err := runHammer(n, *hammerOps, *tracePath, *faultsPath, *persistDir, *snapEvery, *metrics, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if clusterShards.n > 0 {
		err := runClusterBench(clusterShards.n, *replicas, *users, *days, *skew,
			*clusterQueries, *clusterOut, *clusterCheck, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	render := parabit.RunExperiment
	if *format == "csv" {
		render = parabit.RunExperimentCSV
	} else if *format != "table" {
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}

	switch {
	case *list:
		fmt.Println("available experiments:")
		for _, e := range parabit.Experiments() {
			fmt.Println("  " + e)
		}
	case *run == "all":
		fmt.Print(parabit.RunAllExperiments())
	case *run != "":
		out, err := render(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(out)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runHammer drives one device from n concurrent clients with a mixed
// write/read/bitwise/reduce workload and reports how the command
// scheduler batched it: queue depths, dispatch rounds, and how much the
// simulated plane parallelism overlapped command service. With tracePath
// or metrics set, the run executes with telemetry attached; the trace
// file opens in chrome://tracing or ui.perfetto.dev with one lane per
// plane, channel and scheduler queue.
func runHammer(n, ops int, tracePath, faultsPath, persistDir string, snapEvery int, metrics bool, w io.Writer) error {
	devOpts := []parabit.Option{parabit.WithSmallGeometry()}
	if persistDir != "" {
		devOpts = append(devOpts, parabit.WithPersistence(persistDir),
			parabit.WithSnapshotEvery(snapEvery))
	}
	dev, err := parabit.NewDevice(devOpts...)
	if err != nil {
		return err
	}
	// Telemetry is always on: the per-queue report needs the latency
	// histograms even when no trace or metrics dump was requested.
	sink := dev.EnableTelemetry(tracePath != "")
	if faultsPath != "" {
		if err := dev.InstallFaultPlanFile(faultsPath); err != nil {
			return err
		}
	}
	const shared = 8
	for i := 0; i < shared; i += 2 {
		a, b := make([]byte, dev.PageSize()), make([]byte, dev.PageSize())
		rand.New(rand.NewSource(int64(i))).Read(a)
		rand.New(rand.NewSource(int64(i + 1))).Read(b)
		if err := dev.WriteOperandPair(uint64(i), uint64(i+1), a, b); err != nil {
			return err
		}
	}
	// A block-colocated group past the pair range, so the mix also drives
	// Flash-Cosmos multi-wordline reductions.
	fcLPNs := []uint64{shared, shared + 1, shared + 2, shared + 3}
	fcPages := make([][]byte, len(fcLPNs))
	for i := range fcPages {
		fcPages[i] = make([]byte, dev.PageSize())
		rand.New(rand.NewSource(int64(shared + i))).Read(fcPages[i])
	}
	if err := dev.WriteOperandMWSGroup(fcLPNs, fcPages); err != nil {
		return err
	}
	assoc := []parabit.Op{parabit.And, parabit.Or, parabit.Xor}
	wallStart := wallclock.Start()
	var wg sync.WaitGroup
	var surfacedFaults atomic.Int64
	errCh := make(chan error, n)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			base := uint64(100 + 50*w)
			page := make([]byte, dev.PageSize())
			// Issue in bursts of outstanding commands, like an NVMe queue
			// with depth > 1, then reap the burst.
			for i := 0; i < ops; {
				burst := 1 + rng.Intn(8)
				if burst > ops-i {
					burst = ops - i
				}
				pending := make([]*parabit.Pending, 0, burst)
				for j := 0; j < burst; j++ {
					switch rng.Intn(6) {
					case 0:
						rng.Read(page)
						pending = append(pending, dev.WriteAsync(base+uint64(rng.Intn(16)), page))
					case 1:
						pair := uint64(2 * rng.Intn(shared/2))
						pending = append(pending, dev.BitwiseAsync(assoc[rng.Intn(len(assoc))],
							pair, pair+1, parabit.PreAllocated))
					case 2:
						pending = append(pending, dev.ReduceAsync(assoc[rng.Intn(len(assoc))],
							[]uint64{0, 1, 2}, parabit.Reallocated))
					case 3:
						rng.Read(page)
						pending = append(pending, dev.WriteOperandAsync(base+uint64(rng.Intn(16)), page))
					case 4:
						a := uint64(2 * rng.Intn(shared/2))
						b := uint64(2 * rng.Intn(shared/2))
						q := parabit.QueryOr(
							parabit.QueryAnd(parabit.QueryLPN(a), parabit.QueryLPN(a+1)),
							parabit.QueryXor(parabit.QueryLPN(b), parabit.QueryLPN(b+1)))
						pending = append(pending, dev.QueryAsync(q, parabit.Reallocated))
					case 5:
						op := parabit.And
						if rng.Intn(2) == 1 {
							op = parabit.Or
						}
						pending = append(pending, dev.ReduceAsync(op, fcLPNs, parabit.FlashCosmos))
					}
				}
				i += burst
				for _, p := range pending {
					if _, err := p.Wait(); err != nil {
						// With a fault plan armed, unrecoverable injected
						// faults surface as explicit errors — that is the
						// degradation contract, not a workload failure.
						if flash.AsFaultError(err) != nil || errors.Is(err, parabit.ErrPowerCut) {
							surfacedFaults.Add(1)
							continue
						}
						errCh <- fmt.Errorf("client %d: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}
	dev.Flush()
	wall := wallStart.Elapsed()
	st := dev.Stats()
	ss := dev.SchedulerStats()
	fmt.Fprintf(w, "hammer: %d clients x %d ops in %v wall\n", n, ops, wall.Round(time.Millisecond))
	fmt.Fprintf(w, "  virtual elapsed    %v\n", dev.Elapsed())
	fmt.Fprintf(w, "  commands           %d in %d batches (max batch %d)\n", st.Commands, st.Batches, st.MaxBatch)
	fmt.Fprintf(w, "  plane overlap      %.2fx (summed service / makespan)\n", st.Utilization)
	fmt.Fprintf(w, "  bitwise ops        %d (%d fallbacks, %d reallocations)\n",
		st.BitwiseOps, st.Fallbacks, st.Reallocations)
	if qs := dev.QueryStats(); qs.Queries > 0 {
		fmt.Fprintf(w, "  queries            %d (%d plan steps, %d fused chains, %d cache hits, %d invalidations)\n",
			qs.Queries, qs.PlanSteps, qs.FusedChains, qs.CacheHits, qs.CacheInvalidations)
	}
	fmt.Fprintf(w, "  write amplification %.3f\n", st.WriteAmplification)
	fmt.Fprintln(w, "  per-queue: kind submitted errors maxdepth busy p50 p95 p99")
	for k, q := range ss.Queues {
		if q.Submitted == 0 {
			continue
		}
		kind := sched.Kind(k).String()
		// Errors count rejected/failed submissions per kind, reported
		// apart from the latency percentiles: a queue that sheds load
		// fast would otherwise look healthy on latency alone.
		lat := sink.Histogram("sched.latency."+kind).Quantiles(0.50, 0.95, 0.99)
		fmt.Fprintf(w, "    %-14s %9d %6d %8d %12v %9.1fus %9.1fus %9.1fus\n",
			kind, q.Submitted, q.Errors, q.MaxDepth, q.Busy.Std(),
			lat[0].Micros(), lat[1].Micros(), lat[2].Micros())
	}
	if faultsPath != "" {
		fs := dev.FaultStats()
		fmt.Fprintf(w, "fault injection (%s):\n", faultsPath)
		fmt.Fprintf(w, "  injected           %d (%d transient, %d dead-plane, %d program, %d erase, %d stuck-block, %d power-cut)\n",
			fs.Injected, fs.PlaneTransient, fs.PlaneDead, fs.ProgramFails, fs.EraseFails, fs.StuckBlock, fs.PowerCuts)
		fmt.Fprintf(w, "  jitter events      %d\n", fs.JitterEvents)
		fmt.Fprintf(w, "  sched retries      %d (%d exhausted)\n", fs.Retries, fs.RetriesExhausted)
		fmt.Fprintf(w, "  blocks retired     %d (%d pages rescued, %d writes re-steered)\n",
			fs.BlocksRetired, fs.RetirePagesMoved, fs.ResteeredWrites)
		fmt.Fprintf(w, "  surfaced errors    %d\n", surfacedFaults.Load())
	}
	if metrics {
		fmt.Fprintln(w, "\nmetrics:")
		dev.WriteMetrics(w)
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := dev.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "\ntrace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", tracePath)
	}
	if persistDir != "" {
		if ps, ok := dev.PersistStats(); ok {
			fmt.Fprintf(w, "persistence (%s):\n", persistDir)
			fmt.Fprintf(w, "  journal            %d records, %d bytes, %d snapshots\n",
				ps.JournalRecords, ps.JournalBytes, ps.Snapshots)
		}
		// Close (or, after a power cut, abandon) the store and remount:
		// the recovery summary proves the journal covered everything the
		// run acknowledged.
		if err := dev.Close(); err != nil {
			return err
		}
		re, rec, err := parabit.Open(persistDir, parabit.WithSnapshotEvery(snapEvery))
		if err != nil {
			return fmt.Errorf("remount %s: %w", persistDir, err)
		}
		fmt.Fprintf(w, "  remount            %d records replayed, %d in-flight discarded, %d torn bytes, %v replay span\n",
			rec.ReplayedRecords, rec.SkippedIntents, rec.TornBytes, rec.ReplayTime)
		if err := re.CheckInvariants(); err != nil {
			return fmt.Errorf("post-recovery invariants: %w", err)
		}
		fmt.Fprintf(w, "  invariants         ok after recovery\n")
		return re.Close()
	}
	return nil
}
