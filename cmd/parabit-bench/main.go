// parabit-bench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	parabit-bench -list             list available experiments
//	parabit-bench -run fig13a      regenerate one experiment
//	parabit-bench -run all         regenerate everything
package main

import (
	"flag"
	"fmt"
	"os"

	"parabit"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "experiment id to run, or \"all\"")
	format := flag.String("format", "table", "output format: table or csv")
	flag.Parse()

	render := parabit.RunExperiment
	if *format == "csv" {
		render = parabit.RunExperimentCSV
	} else if *format != "table" {
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}

	switch {
	case *list:
		fmt.Println("available experiments:")
		for _, e := range parabit.Experiments() {
			fmt.Println("  " + e)
		}
	case *run == "all":
		fmt.Print(parabit.RunAllExperiments())
	case *run != "":
		out, err := render(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(out)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
