// parabit-bench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	parabit-bench -list             list available experiments
//	parabit-bench -run fig13a      regenerate one experiment
//	parabit-bench -run all         regenerate everything
//	parabit-bench -hammer 16       drive one device from 16 concurrent clients
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"parabit"
	"parabit/internal/sched"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "experiment id to run, or \"all\"")
	format := flag.String("format", "table", "output format: table or csv")
	hammer := flag.Int("hammer", 0, "drive one device from N concurrent clients and report scheduler stats")
	hammerOps := flag.Int("hammer-ops", 200, "operations per hammer client")
	flag.Parse()

	if *hammer > 0 {
		if err := runHammer(*hammer, *hammerOps); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	render := parabit.RunExperiment
	if *format == "csv" {
		render = parabit.RunExperimentCSV
	} else if *format != "table" {
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}

	switch {
	case *list:
		fmt.Println("available experiments:")
		for _, e := range parabit.Experiments() {
			fmt.Println("  " + e)
		}
	case *run == "all":
		fmt.Print(parabit.RunAllExperiments())
	case *run != "":
		out, err := render(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(out)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runHammer drives one device from n concurrent clients with a mixed
// write/read/bitwise/reduce workload and reports how the command
// scheduler batched it: queue depths, dispatch rounds, and how much the
// simulated plane parallelism overlapped command service.
func runHammer(n, ops int) error {
	dev, err := parabit.NewDevice(parabit.WithSmallGeometry())
	if err != nil {
		return err
	}
	const shared = 8
	for i := 0; i < shared; i += 2 {
		a, b := make([]byte, dev.PageSize()), make([]byte, dev.PageSize())
		rand.New(rand.NewSource(int64(i))).Read(a)
		rand.New(rand.NewSource(int64(i + 1))).Read(b)
		if err := dev.WriteOperandPair(uint64(i), uint64(i+1), a, b); err != nil {
			return err
		}
	}
	assoc := []parabit.Op{parabit.And, parabit.Or, parabit.Xor}
	wallStart := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			base := uint64(100 + 50*w)
			page := make([]byte, dev.PageSize())
			// Issue in bursts of outstanding commands, like an NVMe queue
			// with depth > 1, then reap the burst.
			for i := 0; i < ops; {
				burst := 1 + rng.Intn(8)
				if burst > ops-i {
					burst = ops - i
				}
				pending := make([]*parabit.Pending, 0, burst)
				for j := 0; j < burst; j++ {
					switch rng.Intn(4) {
					case 0:
						rng.Read(page)
						pending = append(pending, dev.WriteAsync(base+uint64(rng.Intn(16)), page))
					case 1:
						pair := uint64(2 * rng.Intn(shared/2))
						pending = append(pending, dev.BitwiseAsync(assoc[rng.Intn(len(assoc))],
							pair, pair+1, parabit.PreAllocated))
					case 2:
						pending = append(pending, dev.ReduceAsync(assoc[rng.Intn(len(assoc))],
							[]uint64{0, 1, 2}, parabit.Reallocated))
					case 3:
						rng.Read(page)
						pending = append(pending, dev.WriteOperandAsync(base+uint64(rng.Intn(16)), page))
					}
				}
				i += burst
				for _, p := range pending {
					if _, err := p.Wait(); err != nil {
						errCh <- fmt.Errorf("client %d: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}
	dev.Flush()
	wall := time.Since(wallStart)
	st := dev.Stats()
	ss := dev.SchedulerStats()
	fmt.Printf("hammer: %d clients x %d ops in %v wall\n", n, ops, wall.Round(time.Millisecond))
	fmt.Printf("  virtual elapsed    %v\n", dev.Elapsed())
	fmt.Printf("  commands           %d in %d batches (max batch %d)\n", st.Commands, st.Batches, st.MaxBatch)
	fmt.Printf("  plane overlap      %.2fx (summed service / makespan)\n", st.Utilization)
	fmt.Printf("  bitwise ops        %d (%d fallbacks, %d reallocations)\n",
		st.BitwiseOps, st.Fallbacks, st.Reallocations)
	fmt.Printf("  write amplification %.3f\n", st.WriteAmplification)
	fmt.Println("  per-queue: kind submitted maxdepth busy")
	for k, q := range ss.Queues {
		if q.Submitted == 0 {
			continue
		}
		fmt.Printf("    %-14s %9d %8d %v\n", sched.Kind(k).String(), q.Submitted, q.MaxDepth, q.Busy.Std())
	}
	return nil
}
