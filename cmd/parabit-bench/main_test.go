package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"parabit"
	"parabit/internal/telemetry"
)

func TestHammerFlagForms(t *testing.T) {
	cases := []struct {
		in      string
		want    int
		wantErr bool
	}{
		{"true", defaultHammerClients, false}, // bare -hammer
		{"false", 0, false},
		{"16", 16, false},
		{"1", 1, false},
		{"0", 0, true},
		{"-3", 0, true},
		{"lots", 0, true},
	}
	for _, c := range cases {
		var h hammerFlag
		err := h.Set(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("Set(%q): err=%v, wantErr=%v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && h.n != c.want {
			t.Errorf("Set(%q): n=%d, want %d", c.in, h.n, c.want)
		}
	}
	if !(&hammerFlag{}).IsBoolFlag() {
		t.Error("hammer flag must be bool-style so bare -hammer parses")
	}
}

// TestRunHammerWithTraceAndMetrics is the end-to-end check of the
// telemetry plumbing: a -hammer run with -trace and -metrics must emit a
// parseable Chrome trace with one lane per plane and per scheduler queue,
// and a metrics summary with per-op-kind latency quantiles.
func TestRunHammerWithTraceAndMetrics(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "out.json")
	var out bytes.Buffer
	if err := runHammer(3, 40, tracePath, "", "", 0, true, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "hammer: 3 clients x 40 ops") {
		t.Errorf("missing hammer report header:\n%s", text)
	}

	// Metrics summary: per-op-kind latency histograms with p50/p99.
	for _, kind := range []string{"write", "bitwise", "reduce"} {
		re := regexp.MustCompile(`hist\s+sched\.latency\.` + kind + `\s+count=[1-9]\d*.*p50=\S+.*p99=\S+`)
		if !re.MatchString(text) {
			t.Errorf("metrics summary lacks populated latency histogram for %q:\n%s", kind, text)
		}
	}
	if !strings.Contains(text, "counter ssd.bitwise.ops") {
		t.Errorf("metrics summary lacks bitwise op counter:\n%s", text)
	}

	// Trace file: valid Chrome trace-event JSON round-trip.
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var f telemetry.TraceFile
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	lanes := map[string]bool{}
	spans := 0
	for _, ev := range f.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			lanes[ev.Args["name"]] = true
		}
		if ev.Ph == "X" {
			spans++
		}
	}
	// The small geometry has 8 planes; the scheduler has one lane per
	// command kind. All must be present even if idle.
	for _, want := range []string{
		"plane-0", "plane-1", "plane-2", "plane-3",
		"plane-4", "plane-5", "plane-6", "plane-7",
		"chan-0", "chan-1", "link",
		"queue-write", "queue-write-operand", "queue-write-pair",
		"queue-write-group", "queue-write-on-plane", "queue-write-triple",
		"queue-read", "queue-bitwise", "queue-bitwise-triple",
		"queue-reduce", "queue-formula", "queue-query", "queue-barrier",
		"gc", "read-reclaim", "static-wl", "batches", "bitwise",
	} {
		if !lanes[want] {
			t.Errorf("trace is missing lane %q (have %v)", want, lanes)
		}
	}
	if spans == 0 {
		t.Error("trace has no complete (X) spans")
	}
}

// TestRunHammerWithFaults arms a fault plan under the concurrent hammer:
// the run must survive, and the report must end with the fault/recovery
// summary showing the injections actually happened.
func TestRunHammerWithFaults(t *testing.T) {
	planPath := filepath.Join(t.TempDir(), "plan.json")
	plan := `{"seed": 7, "rules": [
		{"type": "plane-transient", "plane": -1, "from_us": 0, "to_us": 100},
		{"type": "jitter", "rate": 0.5, "op": "sense", "max_jitter_us": 10}
	]}`
	if err := os.WriteFile(planPath, []byte(plan), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runHammer(3, 40, "", planPath, "", 0, false, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "fault injection") {
		t.Fatalf("missing fault summary:\n%s", text)
	}
	for _, re := range []string{
		`injected\s+[1-9]`,      // the startup window injected faults
		`jitter events\s+[1-9]`, // the sense jitter fired
		`sched retries\s+[1-9]`, // the scheduler rode the window out
	} {
		if !regexp.MustCompile(re).MatchString(text) {
			t.Errorf("fault summary lacks %q:\n%s", re, text)
		}
	}
	if err := runHammer(1, 1, "", filepath.Join(t.TempDir(), "missing.json"), "", 0, false, &out); err == nil {
		t.Error("missing plan file accepted")
	}
}

// TestRunHammerPersist backs the hammer with an on-disk store, once
// gracefully and once under a power-cut plan. Both runs must end with
// the remount summary and a clean invariant audit; the cut run must
// also count its power-cut faults.
func TestRunHammerPersist(t *testing.T) {
	var out bytes.Buffer
	if err := runHammer(3, 40, "", "", t.TempDir(), 16, false, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"persistence (", "remount", "invariants         ok"} {
		if !strings.Contains(text, want) {
			t.Fatalf("persist summary lacks %q:\n%s", want, text)
		}
	}

	planPath := filepath.Join(t.TempDir(), "cut.json")
	plan := `{"seed": 7, "rules": [{"type": "power-cut", "point": "post-journal", "after_n": 10}]}`
	if err := os.WriteFile(planPath, []byte(plan), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runHammer(3, 40, "", planPath, t.TempDir(), 16, false, &out); err != nil {
		t.Fatal(err)
	}
	text = out.String()
	for _, re := range []string{
		`[1-9]\d* power-cut\)`,  // the cut fired and was counted
		`remount\s+\d+ records`, // recovery ran
		`invariants\s+ok`,       // and audited clean
	} {
		if !regexp.MustCompile(re).MatchString(text) {
			t.Errorf("cut-run summary lacks %q:\n%s", re, text)
		}
	}
}

// TestRunPlannerReportAndGate runs the planner benchmark end to end: the
// fused run must beat the unfused baseline at the tail, the JSON report
// must round-trip, the gate must pass against the report it just wrote
// and fail against a doctored one claiming a much faster past.
func TestRunPlannerReportAndGate(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "report.json")
	var buf bytes.Buffer
	if err := runPlanner(parabit.LocationFree, out, "", &buf); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep plannerReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Queries != plannerQueries {
		t.Errorf("report covers %d queries, want %d", rep.Queries, plannerQueries)
	}
	if rep.Fused.P99US >= rep.Unfused.P99US {
		t.Errorf("fusion must win at the tail: fused p99 %.1fus vs unfused %.1fus",
			rep.Fused.P99US, rep.Unfused.P99US)
	}
	if rep.FusedChains == 0 || rep.CacheHits == 0 {
		t.Errorf("workload exercised no fusion or caching: %+v", rep)
	}

	if err := checkPlannerReport(rep, out); err != nil {
		t.Errorf("gate fails against its own report: %v", err)
	}
	doctored := rep
	doctored.Fused.P99US = rep.Fused.P99US / 2 // pretend the past was 2x faster
	blob, err = json.Marshal(doctored)
	if err != nil {
		t.Fatal(err)
	}
	fake := filepath.Join(dir, "fake.json")
	if err := os.WriteFile(fake, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkPlannerReport(rep, fake); err == nil {
		t.Error("gate accepted a >10% fused-p99 regression")
	}
	doctored = rep
	doctored.Seed = rep.Seed + 1
	blob, _ = json.Marshal(doctored)
	if err := os.WriteFile(fake, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkPlannerReport(rep, fake); err == nil {
		t.Error("gate accepted a workload drift")
	}
}

// TestHammerMixesQueries pins the hammer's query traffic: the report must
// show planner activity from the query clients.
func TestHammerMixesQueries(t *testing.T) {
	var out bytes.Buffer
	if err := runHammer(3, 60, "", "", "", 0, false, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !regexp.MustCompile(`queries\s+[1-9]\d*\s+\(\d+ plan steps, \d+ fused chains`).MatchString(text) {
		t.Errorf("hammer report lacks query-planner line:\n%s", text)
	}
}

// TestRunHammerPlain keeps the untraced path working: no trace file, no
// metrics section, stats still reported.
func TestRunHammerPlain(t *testing.T) {
	var out bytes.Buffer
	if err := runHammer(2, 10, "", "", "", 0, false, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "commands") || !strings.Contains(text, "per-queue") {
		t.Errorf("missing scheduler report:\n%s", text)
	}
	if strings.Contains(text, "metrics:") || strings.Contains(text, "trace written") {
		t.Errorf("plain run leaked telemetry output:\n%s", text)
	}
}
