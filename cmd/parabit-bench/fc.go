package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"parabit"
	"parabit/internal/latch"
)

// The Flash-Cosmos benchmark sweeps reduction width k and measures the
// same seeded AND reductions two ways on identically loaded devices:
//
//   - Flash-Cosmos: operands block-colocated with WriteOperandMWSGroup
//     (ESP-programmed), so each reduction collapses into one
//     multi-wordline sense per 8-operand chunk;
//   - LocFree: operands LSB-aligned with WriteOperandGroup, reduced by
//     the chained pairwise program — the strongest pre-MWS scheme.
//
// Every reduction's bytes are cross-checked against a software fold, so
// the latency table can only come from executions that produced correct
// results. The run is deterministic: the same binary emits the same JSON
// report every time, which is what lets CI diff it against the
// checked-in BENCH_fc.json.

const (
	fcSeed   = 1
	fcRounds = 24
	// fcP99Tolerance is the CI gate: each sweep point's measured
	// Flash-Cosmos p99 may exceed the checked-in report's by at most this
	// factor.
	fcP99Tolerance = 1.10
	// fcMinSpeedup and fcMinSpeedupK are the acceptance floor: at
	// full-chunk widths from fcMinSpeedupK up (k a multiple of the
	// per-sense cap), the MWS fold must beat the chained LocFree
	// reduction at the tail by at least fcMinSpeedup. Remainder widths
	// (e.g. 12 = 8+4) sit slightly below the full-chunk curve — the
	// trailing sub-cap chunk pays nearly a full sense base — and are
	// held by the per-point regression tolerance instead.
	fcMinSpeedup  = 5.0
	fcMinSpeedupK = 8
	// fcFallbackSlack bounds fallback-rate drift: a colocated layout that
	// starts degenerating into pairwise fallbacks fails the gate even if
	// its latency happens to stay inside tolerance.
	fcFallbackSlack = 0.02
)

// fcWidths is the operand-count sweep: below, at, and past the 8-operand
// sense-margin cap (12 and 16 fold as multiple chunks plus combines).
var fcWidths = []int{2, 4, 8, 12, 16}

// fcPoint is one sweep row of the BENCH_fc.json report.
type fcPoint struct {
	K            int         `json:"k"`
	FlashCosmos  plannerSide `json:"flash_cosmos"`
	LocFree      plannerSide `json:"locfree"`
	P99SpeedupX  float64     `json:"p99_speedup_x"`
	FallbackRate float64     `json:"fc_fallback_rate"`
	MWSSenses    int64       `json:"mws_senses"`
}

// fcReport is the BENCH_fc.json schema.
type fcReport struct {
	Seed   int64     `json:"seed"`
	Rounds int       `json:"rounds"`
	Op     string    `json:"op"`
	Sweep  []fcPoint `json:"sweep"`
}

// fcMeasure runs fcRounds k-wide reductions under one scheme, with the
// layout that scheme is designed for, and cross-checks every result
// against the software golden fold.
func fcMeasure(k int, scheme parabit.Scheme, rng *rand.Rand) ([]time.Duration, *parabit.Device, error) {
	dev, err := parabit.NewDevice(parabit.WithSmallGeometry())
	if err != nil {
		return nil, nil, err
	}
	lats := make([]time.Duration, 0, fcRounds)
	for round := 0; round < fcRounds; round++ {
		lpns := make([]uint64, k)
		data := make([][]byte, k)
		golden := make([]byte, dev.PageSize())
		for i := range golden {
			golden[i] = 0xFF
		}
		for i := range lpns {
			lpns[i] = uint64(round*k + i)
			page := make([]byte, dev.PageSize())
			rng.Read(page)
			data[i] = page
			for j := range golden {
				golden[j] &= page[j]
			}
		}
		if scheme == parabit.FlashCosmos {
			err = dev.WriteOperandMWSGroup(lpns, data)
		} else {
			err = dev.WriteOperandGroup(lpns, data)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("fc bench: lay out k=%d round %d: %w", k, round, err)
		}
		r, err := dev.Reduce(parabit.And, lpns, scheme)
		if err != nil {
			return nil, nil, fmt.Errorf("fc bench: reduce k=%d round %d under %v: %w", k, round, scheme, err)
		}
		if !bytes.Equal(r.Data, golden) {
			return nil, nil, fmt.Errorf("fc bench: k=%d round %d under %v: result differs from software fold", k, round, scheme)
		}
		lats = append(lats, r.Latency)
	}
	return lats, dev, nil
}

// runFC measures the sweep, prints the comparison, and optionally writes
// the JSON report or gates against a checked-in one.
func runFC(outPath, checkPath string, w io.Writer) error {
	rep := fcReport{Seed: fcSeed, Rounds: fcRounds, Op: "AND"}
	for _, k := range fcWidths {
		// Both sides reduce identical bytes: one seed per (k, side) pair.
		fcLats, fcDev, err := fcMeasure(k, parabit.FlashCosmos, rand.New(rand.NewSource(fcSeed+int64(k))))
		if err != nil {
			return err
		}
		lfLats, _, err := fcMeasure(k, parabit.LocationFree, rand.New(rand.NewSource(fcSeed+int64(k))))
		if err != nil {
			return err
		}
		st := fcDev.Stats()
		p := fcPoint{
			K:            k,
			FlashCosmos:  side(fcLats),
			LocFree:      side(lfLats),
			FallbackRate: float64(st.Fallbacks) / float64(fcRounds),
			MWSSenses:    st.MWSSenses,
		}
		if p.FlashCosmos.P99US > 0 {
			p.P99SpeedupX = p.LocFree.P99US / p.FlashCosmos.P99US
		}
		rep.Sweep = append(rep.Sweep, p)
	}

	fmt.Fprintf(w, "flash-cosmos: %d-round AND reduction sweep (virtual time)\n", fcRounds)
	fmt.Fprintf(w, "  %3s %12s %12s %9s %9s %6s\n", "k", "fc-p99", "locfree-p99", "speedup", "fallback", "mws")
	for _, p := range rep.Sweep {
		fmt.Fprintf(w, "  %3d %10.1fus %10.1fus %8.2fx %8.1f%% %6d\n",
			p.K, p.FlashCosmos.P99US, p.LocFree.P99US, p.P99SpeedupX, p.FallbackRate*100, p.MWSSenses)
	}

	if outPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "report written to %s\n", outPath)
	}
	if checkPath != "" {
		if err := checkFCReport(rep, checkPath); err != nil {
			return err
		}
		fmt.Fprintf(w, "report matches %s (within %.0f%% on fc p99, >=%.0fx at k>=%d)\n",
			checkPath, (fcP99Tolerance-1)*100, fcMinSpeedup, fcMinSpeedupK)
	}
	return nil
}

// checkFCReport is the CI gate: the sweep shape must match the recorded
// report, each point's Flash-Cosmos p99 must hold within tolerance, the
// colocated layout must not degenerate into pairwise fallbacks, and the
// headline multi-operand win must stay above the acceptance floor.
func checkFCReport(got fcReport, path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want fcReport
	if err := json.Unmarshal(blob, &want); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if got.Seed != want.Seed || got.Rounds != want.Rounds || got.Op != want.Op || len(got.Sweep) != len(want.Sweep) {
		return fmt.Errorf("workload drifted from %s (regenerate with -fc -fc-out)", path)
	}
	for i, g := range got.Sweep {
		w := want.Sweep[i]
		if g.K != w.K {
			return fmt.Errorf("sweep drifted from %s: k=%d at row %d, recorded k=%d (regenerate with -fc -fc-out)",
				path, g.K, i, w.K)
		}
		if limit := w.FlashCosmos.P99US * fcP99Tolerance; g.FlashCosmos.P99US > limit {
			return fmt.Errorf("flash-cosmos p99 regressed at k=%d: %.1fus measured vs %.1fus recorded (limit %.1fus)",
				g.K, g.FlashCosmos.P99US, w.FlashCosmos.P99US, limit)
		}
		if g.FallbackRate > w.FallbackRate+fcFallbackSlack {
			return fmt.Errorf("flash-cosmos fallbacks degenerated at k=%d: rate %.2f measured vs %.2f recorded — the colocated layout is no longer realizing MWS folds",
				g.K, g.FallbackRate, w.FallbackRate)
		}
		if g.K >= fcMinSpeedupK && g.K%latch.MaxMWSOperands == 0 && g.P99SpeedupX < fcMinSpeedup {
			return fmt.Errorf("flash-cosmos win collapsed at k=%d: %.2fx p99 speedup over LocFree, floor is %.1fx",
				g.K, g.P99SpeedupX, fcMinSpeedup)
		}
	}
	return nil
}
