package main

import "testing"

func TestParseOp(t *testing.T) {
	for _, name := range []string{"AND", "and", "XOR", "NOT-LSB", "not-msb"} {
		if _, ok := parseOp(name); !ok {
			t.Errorf("parseOp(%q) failed", name)
		}
	}
	if _, ok := parseOp("bogus"); ok {
		t.Error("parseOp accepted bogus")
	}
}

func TestParseScheme(t *testing.T) {
	cases := map[string]bool{
		"prealloc": true, "parabit": true, "realloc": true,
		"locfree": true, "LOCFREE": true, "nope": false,
		"fc": true, "flashcosmos": true, "Flash-Cosmos": true,
		"ParaBit-LocFree": true,
	}
	for name, want := range cases {
		if _, ok := parseScheme(name); ok != want {
			t.Errorf("parseScheme(%q) = %v, want %v", name, ok, want)
		}
	}
}

func TestFillPage(t *testing.T) {
	page, err := fillPage("a5", 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range page {
		if b != 0xA5 {
			t.Fatal("pattern not repeated")
		}
	}
	page, err = fillPage("0102", 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 2, 1, 2, 1}
	for i := range want {
		if page[i] != want[i] {
			t.Fatalf("byte %d = %d", i, page[i])
		}
	}
	if _, err := fillPage("zz", 8); err == nil {
		t.Error("bad hex accepted")
	}
	if _, err := fillPage("", 8); err == nil {
		t.Error("empty pattern accepted")
	}
}
