// parabit-sim runs a single in-flash bitwise operation on the simulated
// SSD and shows the result, its latency, and — with -explain — the full
// latching-circuit control sequence as the paper's tables print it.
//
// Usage:
//
//	parabit-sim -op XOR -scheme prealloc -x a5a5 -y 0f0f
//	parabit-sim -op AND -explain
//	parabit-sim -op XOR -explain -locfree
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"parabit"
	"parabit/internal/latch"
)

func main() {
	opName := flag.String("op", "AND", "operation: AND OR XOR XNOR NAND NOR NOT-LSB NOT-MSB")
	schemeName := flag.String("scheme", "prealloc", "scheme: prealloc, realloc, locfree")
	xHex := flag.String("x", "a5", "first operand bytes (hex, repeated to fill a page)")
	yHex := flag.String("y", "3c", "second operand bytes (hex, repeated to fill a page)")
	explain := flag.Bool("explain", false, "print the latching-circuit control sequence")
	locfreeSeq := flag.Bool("locfree", false, "with -explain: show the location-free sequence")
	persistDir := flag.String("persist", "", "back the device with an on-disk store in this directory (created on first use, recovered afterwards)")
	flag.Parse()

	op, ok := parseOp(*opName)
	if !ok {
		fail("unknown op %q", *opName)
	}

	if *explain {
		lop := latch.Op(op)
		seq := latch.ForOp(lop)
		if *locfreeSeq {
			seq = latch.ForOpLocFree(lop)
		}
		rows := latch.RunSymbolic(seq, true)
		fmt.Print(latch.FormatTable(seq, rows))
		fmt.Printf("SROs: %d (%.0fµs on the modeled MLC flash)\n",
			seq.SROs(), float64(seq.SROs())*25)
		return
	}

	scheme, ok := parseScheme(*schemeName)
	if !ok {
		fail("unknown scheme %q", *schemeName)
	}

	dev, err := openDevice(*persistDir)
	if err != nil {
		fail("%v", err)
	}
	x, err := fillPage(*xHex, dev.PageSize())
	if err != nil {
		fail("bad -x: %v", err)
	}
	y, err := fillPage(*yHex, dev.PageSize())
	if err != nil {
		fail("bad -y: %v", err)
	}

	switch scheme {
	case parabit.PreAllocated:
		err = dev.WriteOperandPair(0, 1, x, y)
	case parabit.LocationFree:
		err = dev.WriteOperandGroup([]uint64{0, 1}, [][]byte{x, y})
	case parabit.FlashCosmos:
		err = dev.WriteOperandMWSGroup([]uint64{0, 1}, [][]byte{x, y})
	default:
		if err = dev.WriteOperand(0, x); err == nil {
			err = dev.WriteOperand(1, y)
		}
	}
	if err != nil {
		fail("writing operands: %v", err)
	}

	r, err := dev.Bitwise(op, 0, 1, scheme)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("op:      %v (%v scheme)\n", op, scheme)
	fmt.Printf("x[0:8]:  %x\n", x[:8])
	fmt.Printf("y[0:8]:  %x\n", y[:8])
	fmt.Printf("out:     %x\n", r.Data[:8])
	fmt.Printf("latency: %v\n", r.Latency)
	s := dev.Stats()
	fmt.Printf("device:  %d SROs, %d reallocations, %d programs\n",
		s.SROs, s.Reallocations, s.Programs)
	if ps, ok := dev.PersistStats(); ok {
		fmt.Printf("persist: %d journal records (%d bytes), %d snapshots, %d replayed at mount\n",
			ps.JournalRecords, ps.JournalBytes, ps.Snapshots, ps.ReplayedRecords)
	}
	if err := dev.Close(); err != nil {
		fail("closing device: %v", err)
	}
}

// openDevice builds the simulated SSD: in-memory by default, or backed
// by (and, on reuse, recovered from) an on-disk store with -persist.
func openDevice(dir string) (*parabit.Device, error) {
	if dir == "" {
		return parabit.NewDevice(parabit.WithSmallGeometry())
	}
	if _, err := os.Stat(filepath.Join(dir, "CURRENT")); err == nil {
		dev, rec, err := parabit.Open(dir)
		if err != nil {
			return nil, err
		}
		fmt.Printf("recovered %s: %d records replayed, %d in-flight writes discarded, %d torn bytes truncated\n",
			dir, rec.ReplayedRecords, rec.SkippedIntents, rec.TornBytes)
		return dev, nil
	}
	return parabit.NewDevice(parabit.WithSmallGeometry(), parabit.WithPersistence(dir))
}

func parseOp(s string) (parabit.Op, bool) {
	for _, op := range parabit.Ops {
		if strings.EqualFold(op.String(), s) {
			return op, true
		}
	}
	return 0, false
}

func parseScheme(s string) (parabit.Scheme, bool) {
	// Short aliases for the command line; full names resolve through the
	// scheme registry, so a new scheme is parseable here without edits.
	switch strings.ToLower(s) {
	case "prealloc":
		return parabit.PreAllocated, true
	case "realloc":
		return parabit.Reallocated, true
	case "locfree":
		return parabit.LocationFree, true
	case "flashcosmos", "fc":
		return parabit.FlashCosmos, true
	}
	sc, err := parabit.ParseScheme(s)
	return sc, err == nil
}

func fillPage(hexStr string, ps int) ([]byte, error) {
	pattern, err := hex.DecodeString(hexStr)
	if err != nil {
		return nil, err
	}
	if len(pattern) == 0 {
		return nil, fmt.Errorf("empty pattern")
	}
	out := make([]byte, ps)
	for i := range out {
		out[i] = pattern[i%len(pattern)]
	}
	return out, nil
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
