module parabit

go 1.22
