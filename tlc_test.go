package parabit

import (
	"bytes"
	"testing"
	"time"
)

func TestTLCDeviceTripleOps(t *testing.T) {
	d := newTestDevice(t, WithTLCGeometry())
	a, b, c := pageOf(d, 1), pageOf(d, 2), pageOf(d, 3)
	lpns := [3]uint64{0, 1, 2}
	if err := d.WriteOperandTriple(lpns, [3][]byte{a, b, c}); err != nil {
		t.Fatal(err)
	}
	for _, op := range Op3s {
		r, err := d.Bitwise3(op, lpns)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		for i := range r.Data {
			for bit := 0; bit < 8; bit++ {
				x := a[i]&(1<<bit) != 0
				y := b[i]&(1<<bit) != 0
				z := c[i]&(1<<bit) != 0
				if (r.Data[i]&(1<<bit) != 0) != op.Eval(x, y, z) {
					t.Fatalf("%v: bit %d.%d wrong", op, i, bit)
				}
			}
		}
	}
}

func TestTLCAnd3Latency(t *testing.T) {
	// §4.4.1: AND3 is one sense — 60 µs under TLC timing.
	d := newTestDevice(t, WithTLCGeometry())
	a, b, c := pageOf(d, 4), pageOf(d, 5), pageOf(d, 6)
	lpns := [3]uint64{0, 1, 2}
	if err := d.WriteOperandTriple(lpns, [3][]byte{a, b, c}); err != nil {
		t.Fatal(err)
	}
	r, err := d.Bitwise3(And3, lpns)
	if err != nil {
		t.Fatal(err)
	}
	if r.Latency != 60*time.Microsecond {
		t.Errorf("AND3 latency = %v, want 60µs", r.Latency)
	}
	if Op3Latency(And3) != 60*time.Microsecond {
		t.Errorf("Op3Latency(And3) = %v", Op3Latency(And3))
	}
	if Op3Latency(Or3) != 120*time.Microsecond {
		t.Errorf("Op3Latency(Or3) = %v", Op3Latency(Or3))
	}
}

func TestTLCRejectsMLCOps(t *testing.T) {
	d := newTestDevice(t, WithTLCGeometry())
	a, b := pageOf(d, 7), pageOf(d, 8)
	if err := d.WriteOperand(0, a); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteOperand(1, b); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Bitwise(And, 0, 1, Reallocated); err == nil {
		t.Fatal("MLC scheme op accepted on TLC device")
	}
}

func TestMLCRejectsTripleOps(t *testing.T) {
	d := newTestDevice(t)
	a := pageOf(d, 9)
	if err := d.WriteOperandTriple([3]uint64{0, 1, 2}, [3][]byte{a, a, a}); err == nil {
		t.Fatal("triple write accepted on MLC device")
	}
}

func TestTLCBaselineReadsRoundTrip(t *testing.T) {
	// All three TLC pages (1, 2 and 4 senses) must read back exactly.
	d := newTestDevice(t, WithTLCGeometry())
	a, b, c := pageOf(d, 10), pageOf(d, 11), pageOf(d, 12)
	if err := d.WriteOperandTriple([3]uint64{0, 1, 2}, [3][]byte{a, b, c}); err != nil {
		t.Fatal(err)
	}
	for i, want := range [][]byte{a, b, c} {
		got, err := d.Read(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("TLC page %d corrupted", i)
		}
	}
}

func TestTLCSegmentationEndToEnd(t *testing.T) {
	// The segmentation recognition (Y AND U AND V) on TLC: the whole
	// three-way AND is one sense per page triple.
	d := newTestDevice(t, WithTLCGeometry())
	ps := d.PageSize()
	y, u, v := pageOf(d, 20), pageOf(d, 21), pageOf(d, 22)
	if err := d.WriteOperandTriple([3]uint64{0, 1, 2}, [3][]byte{y, u, v}); err != nil {
		t.Fatal(err)
	}
	r, err := d.Bitwise3(And3, [3]uint64{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, ps)
	for i := range want {
		want[i] = y[i] & u[i] & v[i]
	}
	if !bytes.Equal(r.Data, want) {
		t.Fatal("TLC recognition wrong")
	}
	s := d.Stats()
	if s.SROs != 1 {
		t.Fatalf("recognition used %d SROs, want 1 (single VREAD1 sense)", s.SROs)
	}
}
