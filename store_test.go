package parabit

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func newStore(t *testing.T, bits int) (*Device, *ColumnStore) {
	t.Helper()
	d := newTestDevice(t)
	cs, err := NewColumnStore(d, bits)
	if err != nil {
		t.Fatal(err)
	}
	return d, cs
}

func randBits(seed int64, bits int) []byte {
	b := make([]byte, (bits+7)/8)
	rand.New(rand.NewSource(seed)).Read(b)
	if rem := bits % 8; rem != 0 {
		b[len(b)-1] &= byte(1<<rem) - 1
	}
	return b
}

func TestStorePutAndQuery(t *testing.T) {
	d, cs := newStore(t, 3000)
	_ = d
	a := randBits(1, 3000)
	b := randBits(2, 3000)
	c := randBits(3, 3000)
	for name, data := range map[string][]byte{"a": a, "b": b, "c": c} {
		if err := cs.Put(name, data); err != nil {
			t.Fatal(err)
		}
	}
	want := func(f func(x, y byte) byte, cols ...[]byte) []byte {
		out := append([]byte(nil), cols[0]...)
		for _, col := range cols[1:] {
			for i := range out {
				out[i] = f(out[i], col[i])
			}
		}
		return out
	}
	r, err := cs.And("a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Data, want(func(x, y byte) byte { return x & y }, a, b, c)) {
		t.Fatal("AND query wrong")
	}
	if r.Latency <= 0 {
		t.Fatal("no modeled latency")
	}
	r, _ = cs.Or("a", "b")
	if !bytes.Equal(r.Data, want(func(x, y byte) byte { return x | y }, a, b)) {
		t.Fatal("OR query wrong")
	}
	r, _ = cs.Xor("a", "c")
	if !bytes.Equal(r.Data, want(func(x, y byte) byte { return x ^ y }, a, c)) {
		t.Fatal("XOR query wrong")
	}
}

func TestStoreQueriesAreLocationFree(t *testing.T) {
	d, cs := newStore(t, 2000)
	for i := 0; i < 6; i++ {
		if err := cs.Put(string(rune('a'+i)), randBits(int64(10+i), 2000)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cs.And("a", "b", "c", "d", "e", "f"); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Reallocations != 0 || s.Fallbacks != 0 {
		t.Fatalf("store query reallocated: %+v", s)
	}
}

func TestStoreCount(t *testing.T) {
	_, cs := newStore(t, 100)
	a := make([]byte, 13)
	b := make([]byte, 13)
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			a[i/8] |= 1 << (i % 8)
		}
		if i%3 == 0 {
			b[i/8] |= 1 << (i % 8)
		}
	}
	cs.Put("even", a)
	cs.Put("div3", b)
	r, err := cs.And("even", "div3")
	if err != nil {
		t.Fatal(err)
	}
	// Multiples of 6 in [0,100): 0,6,...,96 -> 17.
	if r.Count != 17 {
		t.Fatalf("count = %d, want 17", r.Count)
	}
}

func TestStoreValidation(t *testing.T) {
	d, cs := newStore(t, 1000)
	if err := cs.Put("a", make([]byte, 10)); !errors.Is(err, ErrColumnWidth) {
		t.Fatalf("wrong width: %v", err)
	}
	if err := cs.Put("a", randBits(1, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := cs.Put("a", randBits(2, 1000)); !errors.Is(err, ErrColumnExists) {
		t.Fatalf("duplicate: %v", err)
	}
	if _, err := cs.And("a"); !errors.Is(err, ErrQueryShape) {
		t.Fatalf("single column: %v", err)
	}
	if _, err := cs.And("a", "ghost"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("missing column: %v", err)
	}
	if _, err := NewColumnStore(d, 0); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestStoreDelete(t *testing.T) {
	_, cs := newStore(t, 500)
	cs.Put("a", randBits(1, 500))
	cs.Put("b", randBits(2, 500))
	if err := cs.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := cs.Delete("a"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("double delete: %v", err)
	}
	if got := cs.Columns(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("columns = %v", got)
	}
}

func TestStoreMultiPageColumns(t *testing.T) {
	// Columns wider than one page: each page position must reduce
	// independently and correctly.
	d := newTestDevice(t)
	ps := d.PageSize()
	bits := ps * 8 * 3 // three pages per column
	cs2, err := NewColumnStore(d, bits)
	if err != nil {
		t.Fatal(err)
	}
	a := randBits(5, bits)
	b := randBits(6, bits)
	cs2.Put("a", a)
	cs2.Put("b", b)
	r, err := cs2.And("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Data {
		if r.Data[i] != a[i]&b[i] {
			t.Fatalf("byte %d wrong", i)
		}
	}
	if d.Stats().Fallbacks != 0 {
		t.Fatal("multi-page query fell back to realloc")
	}
}
