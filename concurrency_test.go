package parabit

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestDeviceConcurrentClients hammers one public Device from many
// goroutines with mixed writes, reads, bitwise ops and reductions — the
// scheduler's concurrency contract, meant to run under -race. Every
// result is checked bit-exact and the FTL bookkeeping is verified after.
func TestDeviceConcurrentClients(t *testing.T) {
	d := newTestDevice(t)
	// Telemetry (with tracing) stays attached for the whole hammer run, so
	// -race also covers the sink's counters, histograms and span recorder.
	sink := d.EnableTelemetry(true)
	const (
		workers = 10
		ops     = 40
		shared  = 6
	)
	// Shared read-only operands, laid out pre-allocated in pairs so the
	// PreAllocated scheme also exercises without fallbacks.
	sharedData := make([][]byte, shared)
	for i := 0; i < shared; i += 2 {
		sharedData[i] = pageOf(d, int64(50+i))
		sharedData[i+1] = pageOf(d, int64(51+i))
		if err := d.WriteOperandPair(uint64(i), uint64(i+1), sharedData[i], sharedData[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	goldenOp := func(op Op, a, b []byte) []byte {
		out := make([]byte, len(a))
		for i := range out {
			switch op {
			case And:
				out[i] = a[i] & b[i]
			case Or:
				out[i] = a[i] | b[i]
			case Xor:
				out[i] = a[i] ^ b[i]
			}
		}
		return out
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			base := uint64(500 + 50*w)
			last := make(map[uint64][]byte)
			assoc := []Op{And, Or, Xor}
			for i := 0; i < ops; i++ {
				switch rng.Intn(5) {
				case 0, 1:
					lpn := base + uint64(rng.Intn(10))
					data := pageOf(d, int64(w*1000+i))
					if err := d.Write(lpn, data); err != nil {
						errs <- fmt.Errorf("worker %d write: %w", w, err)
						return
					}
					last[lpn] = data
				case 2:
					for lpn, want := range last {
						got, err := d.Read(lpn)
						if err != nil {
							errs <- fmt.Errorf("worker %d read: %w", w, err)
							return
						}
						if !bytes.Equal(got, want) {
							errs <- fmt.Errorf("worker %d lpn %d: wrong data read back", w, lpn)
							return
						}
						break
					}
				case 3:
					op := assoc[rng.Intn(len(assoc))]
					pair := 2 * rng.Intn(shared/2)
					r, err := d.Bitwise(op, uint64(pair), uint64(pair+1), PreAllocated)
					if err != nil {
						errs <- fmt.Errorf("worker %d bitwise: %w", w, err)
						return
					}
					if !bytes.Equal(r.Data, goldenOp(op, sharedData[pair], sharedData[pair+1])) {
						errs <- fmt.Errorf("worker %d bitwise %v(%d): wrong result", w, op, pair)
						return
					}
				case 4:
					op := assoc[rng.Intn(len(assoc))]
					a, b, c := rng.Intn(shared), rng.Intn(shared), rng.Intn(shared)
					r, err := d.Reduce(op, []uint64{uint64(a), uint64(b), uint64(c)}, Reallocated)
					if err != nil {
						errs <- fmt.Errorf("worker %d reduce: %w", w, err)
						return
					}
					want := goldenOp(op, goldenOp(op, sharedData[a], sharedData[b]), sharedData[c])
					if !bytes.Equal(r.Data, want) {
						errs <- fmt.Errorf("worker %d reduce %v: wrong result", w, op)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	d.Flush()
	st := d.Stats()
	if st.Commands == 0 || st.Batches == 0 {
		t.Fatalf("scheduler saw no work: %+v", st)
	}
	if err := d.dev.FTL().CheckInvariants(); err != nil {
		t.Errorf("FTL invariants violated: %v", err)
	}
	// Every pre-paired bitwise op should have sensed directly.
	if st.Fallbacks != 0 {
		t.Errorf("pre-allocated operands caused %d fallbacks", st.Fallbacks)
	}
	// The telemetry mirror of the op counter must agree with the device,
	// and the trace must have recorded real spans.
	if got := sink.Counter("ssd.bitwise.ops").Value(); got != st.BitwiseOps {
		t.Errorf("telemetry counted %d bitwise ops, device %d", got, st.BitwiseOps)
	}
	if sink.Trace().Len() == 0 {
		t.Error("trace recorded no spans")
	}
	var buf bytes.Buffer
	if err := sink.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
}

// TestAsyncBurstBatches submits a burst of commands through the public
// async API before reaping any of them; the scheduler must dispatch the
// whole burst as one batch so the per-plane operations overlap.
func TestAsyncBurstBatches(t *testing.T) {
	d := newTestDevice(t)
	const pairs = 4
	data := make([][]byte, 2*pairs)
	for i := 0; i < 2*pairs; i += 2 {
		data[i] = pageOf(d, int64(10+i))
		data[i+1] = pageOf(d, int64(11+i))
		if err := d.WriteOperandPair(uint64(i), uint64(i+1), data[i], data[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	d.Flush()
	pending := make([]*Pending, pairs)
	for p := 0; p < pairs; p++ {
		pending[p] = d.BitwiseAsync(And, uint64(2*p), uint64(2*p+1), PreAllocated)
	}
	for p, pd := range pending {
		r, err := pd.Wait()
		if err != nil {
			t.Fatalf("pair %d: %v", p, err)
		}
		for i := range r.Data {
			if r.Data[i] != data[2*p][i]&data[2*p+1][i] {
				t.Fatalf("pair %d: wrong AND result at byte %d", p, i)
			}
		}
	}
	if ss := d.SchedulerStats(); ss.MaxBatch < pairs {
		t.Errorf("burst of %d dispatched with max batch %d; want a single batch", pairs, ss.MaxBatch)
	}
}

// TestColumnStoreConcurrentClients runs concurrent Puts and queries
// against one store; queries batch their per-plane reductions and must
// return exact results throughout.
func TestColumnStoreConcurrentClients(t *testing.T) {
	d := newTestDevice(t)
	const width = 4096
	cs, err := NewColumnStore(d, width)
	if err != nil {
		t.Fatal(err)
	}
	colBytes := width / 8
	mkCol := func(seed int64) []byte {
		b := make([]byte, colBytes)
		rand.New(rand.NewSource(seed)).Read(b)
		return b
	}
	// Seed columns so queries always have operands.
	base := map[string][]byte{}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("seed%d", i)
		base[name] = mkCol(int64(i))
		if err := cs.Put(name, base[name]); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				// Writer: adds private columns.
				for i := 0; i < 4; i++ {
					name := fmt.Sprintf("w%d-%d", w, i)
					if err := cs.Put(name, mkCol(int64(100*w+i))); err != nil {
						errs <- fmt.Errorf("put %s: %w", name, err)
						return
					}
				}
				return
			}
			// Reader: intersects two seed columns, checks exact bits.
			want := make([]byte, colBytes)
			for i := range want {
				want[i] = base["seed0"][i] & base["seed1"][i]
			}
			for i := 0; i < 4; i++ {
				r, err := cs.And("seed0", "seed1")
				if err != nil {
					errs <- fmt.Errorf("query: %w", err)
					return
				}
				if !bytes.Equal(r.Data, want) {
					errs <- fmt.Errorf("worker %d query %d: wrong intersection", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := len(cs.Columns()); got != 4+4*4 {
		t.Fatalf("store holds %d columns, want %d", got, 4+4*4)
	}
	if err := d.dev.FTL().CheckInvariants(); err != nil {
		t.Errorf("FTL invariants violated: %v", err)
	}
}
