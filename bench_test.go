package parabit

// The benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (they regenerate and print the same rows/series the
// paper reports), plus ablation benches for the design choices DESIGN.md
// calls out. Run everything with:
//
//	go test -bench=. -benchmem
//
// The per-figure benches print their table once (first iteration) and
// then measure the driver's own cost; the functional benches measure the
// simulated device's host-visible throughput.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"parabit/internal/experiments"
	"parabit/internal/flash"
	"parabit/internal/latch"
	"parabit/internal/ssd"
)

var printOnce sync.Map

func runFigure(b *testing.B, id string) {
	b.Helper()
	d, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	env := experiments.DefaultEnv()
	if _, done := printOnce.LoadOrStore(id, true); !done {
		b.Logf("\n%s", d.Run(env).Table())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Run(env)
	}
}

// BenchmarkFig04Motivation regenerates Figure 4: data-movement vs bitwise
// time in the PIM and ISC baselines across image counts.
func BenchmarkFig04Motivation(b *testing.B) { runFigure(b, "fig4") }

// BenchmarkFig13aSingleOp regenerates Figure 13(a): single-operation
// latency across PIM, ISC, ParaBit and ParaBit-ReAlloc.
func BenchmarkFig13aSingleOp(b *testing.B) { runFigure(b, "fig13a") }

// BenchmarkFig13b8MB regenerates Figure 13(b): 8 MB-operand latencies.
func BenchmarkFig13b8MB(b *testing.B) { runFigure(b, "fig13b") }

// BenchmarkFig14aSegmentation regenerates Figure 14(a).
func BenchmarkFig14aSegmentation(b *testing.B) { runFigure(b, "fig14a") }

// BenchmarkFig14bBitmap regenerates Figure 14(b).
func BenchmarkFig14bBitmap(b *testing.B) { runFigure(b, "fig14b") }

// BenchmarkFig14cEncryption regenerates Figure 14(c).
func BenchmarkFig14cEncryption(b *testing.B) { runFigure(b, "fig14c") }

// BenchmarkFig15LocFree regenerates Figure 15: the three ParaBit schemes
// compared on op latency and the case studies.
func BenchmarkFig15LocFree(b *testing.B) { runFigure(b, "fig15") }

// BenchmarkFig16Energy regenerates Figure 16: normalized per-op energy.
func BenchmarkFig16Energy(b *testing.B) { runFigure(b, "fig16") }

// BenchmarkFig17Errors regenerates Figure 17: bit errors vs P/E cycles
// and sensing count, plus application-level error rates.
func BenchmarkFig17Errors(b *testing.B) { runFigure(b, "fig17") }

// BenchmarkSec52Crossover regenerates the §5.2 crossover analysis.
func BenchmarkSec52Crossover(b *testing.B) { runFigure(b, "crossover") }

// BenchmarkSec54Endurance regenerates the §5.4 effective-TBW table.
func BenchmarkSec54Endurance(b *testing.B) { runFigure(b, "endurance") }

// BenchmarkSec57Compression regenerates the §5.7 break-even analysis.
func BenchmarkSec57Compression(b *testing.B) { runFigure(b, "compression") }

// --- Functional benches: the simulated device doing real page work. ---

func benchDevice(b *testing.B) *Device {
	b.Helper()
	d, err := NewDevice(WithSmallGeometry())
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkDeviceBitwisePreAlloc measures host-visible simulator
// throughput for co-located XOR pages.
func BenchmarkDeviceBitwisePreAlloc(b *testing.B) {
	d := benchDevice(b)
	x := make([]byte, d.PageSize())
	y := make([]byte, d.PageSize())
	rand.New(rand.NewSource(1)).Read(x)
	rand.New(rand.NewSource(2)).Read(y)
	if err := d.WriteOperandPair(0, 1, x, y); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(d.PageSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Bitwise(Xor, 0, 1, PreAllocated); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeviceReduceLocFree measures a 16-operand chained reduction.
func BenchmarkDeviceReduceLocFree(b *testing.B) {
	d := benchDevice(b)
	const k = 16
	lpns := make([]uint64, k)
	pages := make([][]byte, k)
	for i := range lpns {
		lpns[i] = uint64(i)
		pages[i] = make([]byte, d.PageSize())
		rand.New(rand.NewSource(int64(i))).Read(pages[i])
	}
	if err := d.WriteOperandGroup(lpns, pages); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(k * d.PageSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Reduce(And, lpns, LocationFree); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md §5). ---

// BenchmarkAblationLatchVsVector compares the gate-level latching-circuit
// simulation against the word-wide kernel for one 8 KB page op: the
// reason the hot path uses kernels (the latch package proves they agree).
func BenchmarkAblationLatchVsVector(b *testing.B) {
	pageBytes := 8192
	x := make([]byte, pageBytes)
	y := make([]byte, pageBytes)
	rand.New(rand.NewSource(3)).Read(x)
	rand.New(rand.NewSource(4)).Read(y)

	b.Run("circuit", func(b *testing.B) {
		seq := latch.ForOp(latch.OpXor)
		b.SetBytes(int64(pageBytes))
		for i := 0; i < b.N; i++ {
			for byteIdx := 0; byteIdx < pageBytes; byteIdx++ {
				for bit := 0; bit < 8; bit++ {
					cell := latch.FromBits(x[byteIdx]&(1<<bit) != 0, y[byteIdx]&(1<<bit) != 0)
					c := latch.NewCircuit(latch.CellSensor{cell})
					_ = c.Run(seq)
				}
			}
		}
	})
	b.Run("vector", func(b *testing.B) {
		out := make([]byte, pageBytes)
		b.SetBytes(int64(pageBytes))
		for i := 0; i < b.N; i++ {
			for j := range out {
				out[j] = x[j] ^ y[j]
			}
		}
	})
}

// BenchmarkAblationSerialVsTreeCombine contrasts the paper's serialized
// combine phase with a tree combine that exploits plane parallelism —
// the speedup the paper leaves on the table for the bitmap reduction.
func BenchmarkAblationSerialVsTreeCombine(b *testing.B) {
	geo := flash.Default()
	tm := flash.DefaultTiming()
	const k = 360
	column := int64(100_000_000)
	waves := float64(column) / float64(geo.WaveBytes())
	step := ssd.ReallocStepLatency(tm, latch.OpAnd, 0, geo.PageSize).Seconds()
	sense := ssd.PairSenseLatency(tm, latch.OpAnd).Seconds()
	b.Run("serial", func(b *testing.B) {
		var total float64
		for i := 0; i < b.N; i++ {
			total = float64(k/2)*waves*sense + float64(k/2-1)*waves*step
		}
		b.ReportMetric(total, "modeled-sec")
	})
	b.Run("tree", func(b *testing.B) {
		var total float64
		for i := 0; i < b.N; i++ {
			// log2(k/2) levels of parallel combines; each level's realloc
			// programs overlap across planes, costing one step per level
			// per wave-equivalent of data still in flight.
			levels := 0
			for n := k / 2; n > 1; n = (n + 1) / 2 {
				levels++
			}
			total = float64(k/2)*waves*sense + float64(levels)*waves*step
		}
		b.ReportMetric(total, "modeled-sec")
	})
}

// BenchmarkAblationStriping compares channel-first striping against a
// single-channel layout for a full-device read burst: programs are
// plane-bound, but read transfers serialize on the channel buses, so the
// striping choice shows up as sustained read bandwidth — the allocation
// decision behind the SSD's wave parallelism.
func BenchmarkAblationStriping(b *testing.B) {
	run := func(b *testing.B, geo flash.Geometry) {
		cfg := ssd.DefaultConfig()
		cfg.Geometry = geo
		dev, err := ssd.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		page := make([]byte, geo.PageSize)
		n := geo.Planes() * 4
		for lpn := 0; lpn < n; lpn++ {
			if _, err := dev.Write(uint64(lpn), page, 0); err != nil {
				b.Fatal(err)
			}
		}
		dev.ResetTiming()
		var modeled float64
		for i := 0; i < b.N; i++ {
			dev.ResetTiming()
			var last float64
			for lpn := 0; lpn < n; lpn++ {
				_, done, err := dev.Read(uint64(lpn), 0)
				if err != nil {
					b.Fatal(err)
				}
				if s := float64(done); s > last {
					last = s
				}
			}
			modeled = last / 1e6
		}
		b.ReportMetric(modeled, "modeled-ms")
	}
	// Full-size 8 KB pages so transfers (≈21 µs on a 400 MB/s channel)
	// are comparable to senses and the bus actually loads.
	base := flash.Geometry{
		Channels: 4, ChipsPerChannel: 2, DiesPerChip: 1, PlanesPerDie: 2,
		BlocksPerPlane: 64, WordlinesPerBlock: 32, PageSize: 8192, CellBits: 2,
	}
	b.Run("striped-multichannel", func(b *testing.B) { run(b, base) })
	b.Run("single-channel", func(b *testing.B) {
		geo := base
		geo.ChipsPerChannel *= geo.Channels
		geo.Channels = 1
		run(b, geo)
	})
}

// BenchmarkAblationECCRealloc measures the §4.4.3 error-intolerant mode:
// moving operands to fresh cells before every op even when co-located
// (ReAlloc path) versus trusting the pre-allocated layout.
func BenchmarkAblationECCRealloc(b *testing.B) {
	for _, tc := range []struct {
		name   string
		scheme Scheme
	}{
		{"trusting-prealloc", PreAllocated},
		{"ecc-realloc", Reallocated},
	} {
		b.Run(tc.name, func(b *testing.B) {
			d := benchDevice(b)
			x := make([]byte, d.PageSize())
			y := make([]byte, d.PageSize())
			rand.New(rand.NewSource(5)).Read(x)
			rand.New(rand.NewSource(6)).Read(y)
			if err := d.WriteOperandPair(0, 1, x, y); err != nil {
				b.Fatal(err)
			}
			var modeled float64
			for i := 0; i < b.N; i++ {
				r, err := d.Bitwise(Xor, 0, 1, tc.scheme)
				if err != nil {
					b.Fatal(err)
				}
				modeled = float64(r.Latency.Microseconds())
				if i%512 == 0 {
					d.Reclaim()
				}
			}
			b.ReportMetric(modeled, "modeled-µs/op")
		})
	}
}

// BenchmarkAblationChannelContention quantifies what the paper's cost
// accounting leaves out: per-wave reallocation with explicit channel
// transfers for every plane (64 planes share a channel on the default
// geometry) versus the lockstep model.
func BenchmarkAblationChannelContention(b *testing.B) {
	geo := flash.Default()
	tm := flash.DefaultTiming()
	lockstep := ssd.ReallocStepLatency(tm, latch.OpAnd, 1, geo.PageSize).Seconds()
	planesPerChannel := geo.PlanesPerChannel()
	perChanBytes := planesPerChannel * geo.PageSize
	// With contention: each channel serializes reads out (1 page/plane)
	// and programs in (2 pages/plane) at the channel rate.
	contended := tm.SenseSRO.Seconds() +
		tm.Transfer(perChanBytes).Seconds() + // operand reads out
		2*(tm.Transfer(perChanBytes).Seconds()) + // paired program data in
		2*tm.ProgramPage.Seconds() +
		tm.BitwiseLatency(latch.OpAnd).Seconds()
	b.Run("paper-lockstep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = lockstep
		}
		b.ReportMetric(lockstep*1e3, "modeled-ms/wave")
	})
	b.Run("with-contention", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = contended
		}
		b.ReportMetric(contended*1e3, "modeled-ms/wave")
	})
	if contended < lockstep {
		b.Fatal("contention model should cost more")
	}
}

// BenchmarkScrambler measures the firmware scrambling cost the operand
// path avoids.
func BenchmarkScrambler(b *testing.B) {
	d := benchDevice(b)
	data := make([]byte, d.PageSize())
	rand.New(rand.NewSource(7)).Read(data)
	b.Run("scrambled-write", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if err := d.Write(uint64(i%1000), data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

var _ = fmt.Sprintf // keep fmt for debug printing in table dumps

// BenchmarkAblationCacheRead quantifies the cache-register pipeline
// (§2.1): a read burst with and without cache read.
func BenchmarkAblationCacheRead(b *testing.B) {
	run := func(b *testing.B, noCache bool) {
		geo := flash.Small()
		geo.PageSize = 8192
		tm := flash.DefaultTiming()
		tm.NoCacheRead = noCache
		array := flash.NewArray(geo, tm)
		addr := flash.PageAddr{Kind: flash.LSBPage}
		var modeled float64
		for i := 0; i < b.N; i++ {
			array.ResetTiming()
			var last float64
			for r := 0; r < 16; r++ {
				_, done, err := array.Read(addr, 0)
				if err != nil {
					b.Fatal(err)
				}
				last = float64(done)
			}
			modeled = last / 1e3
		}
		b.ReportMetric(modeled, "modeled-µs/burst16")
	}
	b.Run("cache-read", func(b *testing.B) { run(b, false) })
	b.Run("no-cache-read", func(b *testing.B) { run(b, true) })
}

// BenchmarkColumnStoreQuery measures the public column-store API: a
// 3-way AND over 64Kbit columns, all in-flash.
func BenchmarkColumnStoreQuery(b *testing.B) {
	d := benchDevice(b)
	cs, err := NewColumnStore(d, 64*1024)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for _, name := range []string{"a", "b", "c"} {
		col := make([]byte, 64*1024/8)
		rng.Read(col)
		if err := cs.Put(name, col); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(3 * 64 * 1024 / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cs.And("a", "b", "c"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtTLC regenerates the §4.4.1 TLC extension analysis.
func BenchmarkExtTLC(b *testing.B) { runFigure(b, "ext-tlc") }

// BenchmarkExtScale regenerates the §4.4.2 all-flash-array scaling table.
func BenchmarkExtScale(b *testing.B) { runFigure(b, "ext-scale") }

// BenchmarkExtGC regenerates the GC/write-amplification characterization.
// Each iteration replays the full functional churn, so it is the slowest
// driver by far.
func BenchmarkExtGC(b *testing.B) {
	if testing.Short() {
		b.Skip("functional churn; skipped in -short")
	}
	runFigure(b, "ext-gc")
}

// BenchmarkDeviceTLCAnd3 measures the §4.4.1 TLC three-operand AND on the
// functional simulator.
func BenchmarkDeviceTLCAnd3(b *testing.B) {
	d, err := NewDevice(WithTLCGeometry())
	if err != nil {
		b.Fatal(err)
	}
	var data [3][]byte
	for i := range data {
		data[i] = make([]byte, d.PageSize())
		rand.New(rand.NewSource(int64(i))).Read(data[i])
	}
	lpns := [3]uint64{0, 1, 2}
	if err := d.WriteOperandTriple(lpns, data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(3 * d.PageSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Bitwise3(And3, lpns); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtEnergy regenerates the system-level energy extension.
func BenchmarkExtEnergy(b *testing.B) { runFigure(b, "ext-energy") }
