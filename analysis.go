package parabit

import (
	"fmt"
	"strings"
	"time"

	"parabit/internal/experiments"
	"parabit/internal/flash"
	"parabit/internal/ssd"
)

// ReductionPlan is the analytic execution plan of a paper-scale k-operand
// reduction: how long the in-SSD compute takes and how much reallocation
// it costs, without simulating page-by-page.
type ReductionPlan struct {
	Scheme         Scheme
	Op             Op
	Operands       int
	ColumnBytes    int64
	ComputeSeconds float64
	Reallocations  int
	ReallocBytes   int64
}

// PlanReduce computes the analytic plan for reducing k operand columns of
// columnBytes each on the paper's SSD. The same cost model drives the
// functional Device — they are cross-checked in the test suite.
func PlanReduce(scheme Scheme, op Op, k int, columnBytes int64) ReductionPlan {
	p := ssd.PlanReduce(flash.Default(), flash.DefaultTiming(), scheme.ssd(), op.latch(), k, columnBytes)
	return ReductionPlan{
		Scheme:         scheme,
		Op:             op,
		Operands:       k,
		ColumnBytes:    columnBytes,
		ComputeSeconds: p.TotalSeconds,
		Reallocations:  p.Reallocations,
		ReallocBytes:   p.ReallocBytes,
	}
}

// OpLatency returns the in-flash latency of a single operation under the
// basic (pre-allocated) scheme: the control sequence's sensing time.
func OpLatency(op Op) time.Duration {
	return flash.DefaultTiming().BitwiseLatency(op.latch()).Std()
}

// OpLatencyLocFree returns the latency of a location-free operation over
// aligned LSB operands.
func OpLatencyLocFree(op Op) time.Duration {
	return flash.DefaultTiming().BitwiseLatencyLocFreeLSB(op.latch()).Std()
}

// Experiments lists the available experiment IDs with their titles, in
// ID order (fig4, fig13a, ... endurance, compression, crossover).
func Experiments() []string {
	var out []string
	for _, d := range experiments.Drivers() {
		out = append(out, fmt.Sprintf("%-12s %s", d.ID, d.Title))
	}
	return out
}

// RunExperiment regenerates one of the paper's tables or figures (by ID,
// e.g. "fig13a", "fig14b", "endurance") and returns the formatted table.
func RunExperiment(id string) (string, error) {
	d, ok := experiments.Lookup(id)
	if !ok {
		return "", fmt.Errorf("parabit: unknown experiment %q; available:\n%s",
			id, strings.Join(Experiments(), "\n"))
	}
	return d.Run(experiments.DefaultEnv()).Table(), nil
}

// RunExperimentCSV regenerates an experiment as CSV (header row first),
// for piping into plotting tools.
func RunExperimentCSV(id string) (string, error) {
	d, ok := experiments.Lookup(id)
	if !ok {
		return "", fmt.Errorf("parabit: unknown experiment %q", id)
	}
	return d.Run(experiments.DefaultEnv()).CSV(), nil
}

// RunAllExperiments regenerates every table and figure.
func RunAllExperiments() string {
	var b strings.Builder
	env := experiments.DefaultEnv()
	for _, d := range experiments.Drivers() {
		b.WriteString(d.Run(env).Table())
		b.WriteString("\n")
	}
	return b.String()
}
