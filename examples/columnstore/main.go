// Column store: the downstream-facing shape of ParaBit — a bitmap-index
// store whose AND/OR/XOR queries run inside the SSD. Models a feature
// analytics question: "which users did all of A, B and C, but none of D?"
//
// Run with: go run ./examples/columnstore
package main

import (
	"fmt"
	"log"
	"math/rand"

	"parabit"
)

func main() {
	dev, err := parabit.NewDevice(parabit.WithSmallGeometry())
	if err != nil {
		log.Fatal(err)
	}
	const users = 10_000
	cs, err := parabit.NewColumnStore(dev, users)
	if err != nil {
		log.Fatal(err)
	}

	// Synthetic engagement columns: one bit per user per feature.
	rng := rand.New(rand.NewSource(2021))
	features := map[string]float64{
		"search": 0.70, "upload": 0.40, "share": 0.30, "report-bug": 0.05,
	}
	golden := map[string][]byte{}
	for name, p := range features {
		col := make([]byte, (users+7)/8)
		for u := 0; u < users; u++ {
			if rng.Float64() < p {
				col[u/8] |= 1 << (u % 8)
			}
		}
		if err := cs.Put(name, col); err != nil {
			log.Fatal(err)
		}
		golden[name] = col
	}
	fmt.Printf("stored %d columns of %d users each: %v\n", len(features), users, cs.Columns())

	// Power users: did search AND upload AND share.
	r, err := cs.And("search", "upload", "share")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search∧upload∧share: %5d users, in-SSD latency %v\n", r.Count, r.Latency)

	// Verify against the host-side computation.
	count := 0
	for u := 0; u < users; u++ {
		bit := func(name string) bool { return golden[name][u/8]&(1<<(u%8)) != 0 }
		if bit("search") && bit("upload") && bit("share") {
			count++
		}
	}
	if count != r.Count {
		log.Fatalf("in-SSD count %d != host count %d", r.Count, count)
	}
	fmt.Println("verified against host-side computation")

	// Reached-by-any: OR across everything.
	any, _ := cs.Or("search", "upload", "share", "report-bug")
	fmt.Printf("any feature:          %5d users\n", any.Count)

	// Churn detection: XOR between two day snapshots.
	day2 := make([]byte, (users+7)/8)
	copy(day2, golden["search"])
	for i := 0; i < 200; i++ { // 200 users changed behaviour
		u := rng.Intn(users)
		day2[u/8] ^= 1 << (u % 8)
	}
	cs.Put("search-day2", day2)
	diff, _ := cs.Xor("search", "search-day2")
	fmt.Printf("changed search users: %5d (XOR of snapshots)\n", diff.Count)

	s := dev.Stats()
	fmt.Printf("\ndevice: %d bitwise ops, %d reallocations (location-free queries reallocate nothing)\n",
		s.BitwiseOps, s.Reallocations)
}
