// Image segmentation (paper §3, §5.3.1): YUV color recognition as bulk
// ANDs across three channel class planes, executed inside the simulated
// SSD, verified against the golden host-side computation — then the same
// workload planned at the paper's 200,000-image scale.
//
// Run with: go run ./examples/imagesegmentation
package main

import (
	"fmt"
	"log"

	"parabit"
	"parabit/internal/workload"
)

func main() {
	// Functional run: a small synthetic image set through the simulator.
	spec := workload.SegmentationSpec{
		NumImages: 4, Width: 32, Height: 16, Levels: 256, Colors: 4,
	}
	data, err := workload.GenerateSegmentation(spec, 7)
	if err != nil {
		log.Fatal(err)
	}

	dev, err := parabit.NewDevice(parabit.WithSmallGeometry())
	if err != nil {
		log.Fatal(err)
	}
	ps := dev.PageSize()

	// Slice each channel plane into pages and write Y,U co-located and V
	// grouped for the combine step; here we use the LocationFree layout
	// so the whole 3-way AND chains without reallocation.
	planeBytes := data.Planes[0].Bytes()
	pages := (len(planeBytes) + ps - 1) / ps
	fmt.Printf("planes: 3 x %d bytes (%d pages each)\n", len(planeBytes), pages)

	var recognized, total int
	for p := 0; p < pages; p++ {
		lpns := []uint64{uint64(p * 3), uint64(p*3 + 1), uint64(p*3 + 2)}
		group := make([][]byte, 3)
		for c := range group {
			group[c] = pagedSlice(data.Planes[c].Bytes(), p, ps)
		}
		if err := dev.WriteOperandGroup(lpns, group); err != nil {
			log.Fatal(err)
		}
		r, err := dev.Reduce(parabit.And, lpns, parabit.LocationFree)
		if err != nil {
			log.Fatal(err)
		}
		// Verify against the golden recognition plane.
		want := pagedSlice(data.Golden.Bytes(), p, ps)
		for i := range r.Data {
			if r.Data[i] != want[i] {
				log.Fatalf("page %d byte %d: in-flash %02x, golden %02x", p, i, r.Data[i], want[i])
			}
			for b := 0; b < 8; b++ {
				total++
				if r.Data[i]&(1<<b) != 0 {
					recognized++
				}
			}
		}
	}
	fmt.Printf("recognition verified in-flash: %d of %d pixel-color bits matched a color\n",
		recognized, total)

	// Paper-scale plan: 200,000 images, three schemes.
	fmt.Println("\npaper scale (200,000 images, 48 GB per channel plane):")
	for _, scheme := range parabit.Schemes {
		plan := parabit.PlanReduce(scheme, parabit.And, 3, workload.PaperSegmentation(200_000).ChannelPlaneBytes())
		fmt.Printf("  %-18s compute %7.3fs, %d reallocation steps\n",
			scheme, plan.ComputeSeconds, plan.Reallocations)
	}
}

func pagedSlice(b []byte, page, ps int) []byte {
	out := make([]byte, ps)
	start := page * ps
	if start < len(b) {
		copy(out, b[start:])
	}
	return out
}
