// Quickstart: write two operand pages co-located into one MLC wordline,
// run every bitwise operation in-flash, and print result checksums and
// modeled latencies.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"parabit"
)

func main() {
	dev, err := parabit.NewDevice(parabit.WithSmallGeometry())
	if err != nil {
		log.Fatal(err)
	}

	// Two random operand pages.
	rng := rand.New(rand.NewSource(42))
	x := make([]byte, dev.PageSize())
	y := make([]byte, dev.PageSize())
	rng.Read(x)
	rng.Read(y)

	// Pre-allocate them into the same MLC cells: x in the LSB page,
	// y in the MSB page of one wordline (the paper's §4.1 layout).
	if err := dev.WriteOperandPair(0, 1, x, y); err != nil {
		log.Fatal(err)
	}

	fmt.Println("op       latency    ok")
	for _, op := range parabit.Ops {
		r, err := dev.Bitwise(op, 0, 1, parabit.PreAllocated)
		if err != nil {
			log.Fatal(err)
		}
		ok := true
		for i := range r.Data {
			for b := 0; b < 8; b++ {
				first := x[i]&(1<<b) != 0
				second := y[i]&(1<<b) != 0
				if (r.Data[i]&(1<<b) != 0) != op.Eval(first, second) {
					ok = false
				}
			}
		}
		fmt.Printf("%-8s %-10v %v\n", op, r.Latency, ok)
	}

	s := dev.Stats()
	fmt.Printf("\ndevice: %d bitwise ops, %d SROs, %d programs, elapsed %v\n",
		s.BitwiseOps, s.SROs, s.Programs, dev.Elapsed())
}
