// Bitmap index (paper §5.3.2): which users were active every day? Day
// columns AND-reduce inside the SSD; only the result column leaves the
// device, and the host just counts bits.
//
// Run with: go run ./examples/bitmapindex
package main

import (
	"fmt"
	"log"

	"parabit"
	"parabit/internal/bitvec"
	"parabit/internal/workload"
)

func main() {
	dev, err := parabit.NewDevice(parabit.WithSmallGeometry())
	if err != nil {
		log.Fatal(err)
	}
	ps := dev.PageSize()

	// One page of users (PageSize*8), 2 months of daily activity.
	spec := workload.BitmapSpec{Users: int64(ps * 8), Months: 2, DaysPerMonth: 30}
	data, err := workload.GenerateBitmap(spec, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("users: %d, day columns: %d\n", spec.Users, spec.Days())

	// Location-free layout: all 60 day columns in aligned LSB pages of
	// one plane, so the AND reduction is a single chained operation.
	lpns := make([]uint64, spec.Days())
	pages := make([][]byte, spec.Days())
	for i := range lpns {
		lpns[i] = uint64(i)
		pages[i] = data.Columns[i].Bytes()
	}
	if err := dev.WriteOperandGroup(lpns, pages); err != nil {
		log.Fatal(err)
	}
	r, err := dev.Reduce(parabit.And, lpns, parabit.LocationFree)
	if err != nil {
		log.Fatal(err)
	}
	got := bitvec.FromBytes(r.Data).PopCount()
	fmt.Printf("always-active users (in-flash): %d, golden: %d, latency %v\n",
		got, data.ActiveCount, r.Latency)
	if got != data.ActiveCount {
		log.Fatal("in-flash reduction disagrees with golden result")
	}

	// Compare schemes at small scale.
	for _, scheme := range []parabit.Scheme{parabit.Reallocated, parabit.PreAllocated} {
		d2, err := parabit.NewDevice(parabit.WithSmallGeometry())
		if err != nil {
			log.Fatal(err)
		}
		switch scheme {
		case parabit.PreAllocated:
			for i := 0; i+1 < len(lpns); i += 2 {
				if err := d2.WriteOperandPair(lpns[i], lpns[i+1], pages[i], pages[i+1]); err != nil {
					log.Fatal(err)
				}
			}
		default:
			for i := range lpns {
				if err := d2.WriteOperand(lpns[i], pages[i]); err != nil {
					log.Fatal(err)
				}
			}
		}
		r2, err := d2.Reduce(parabit.And, lpns, scheme)
		if err != nil {
			log.Fatal(err)
		}
		if bitvec.FromBytes(r2.Data).PopCount() != data.ActiveCount {
			log.Fatalf("%v: wrong count", scheme)
		}
		fmt.Printf("%-18s latency %v, reallocations %d\n",
			scheme, r2.Latency, d2.Stats().Reallocations)
	}

	// Paper scale: 800M users, 12 months.
	fmt.Println("\npaper scale (800M users, m=12):")
	bm := workload.PaperBitmap(12)
	for _, scheme := range parabit.Schemes {
		plan := parabit.PlanReduce(scheme, parabit.And, bm.Days(), bm.ColumnBytes())
		fmt.Printf("  %-18s AND time %7.3fs (paper: ReAlloc 6.137s, ParaBit 3.179s)\n",
			scheme, plan.ComputeSeconds)
	}
}
