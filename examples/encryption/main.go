// Image encryption (paper §5.3.3): Cipher = Original XOR Key, computed
// inside the SSD so plaintext never crosses the host link. Demonstrates
// the XOR round trip (encrypt, then decrypt back) and the error model.
//
// Run with: go run ./examples/encryption
package main

import (
	"bytes"
	"fmt"
	"log"

	"parabit"
	"parabit/internal/workload"
)

func main() {
	dev, err := parabit.NewDevice(parabit.WithSmallGeometry(), parabit.WithErrorModel(99))
	if err != nil {
		log.Fatal(err)
	}
	ps := dev.PageSize()

	// Tiny "images": one page each.
	spec := workload.EncryptionSpec{NumImages: 8, Width: ps / 6, Height: 2, BitsPerChannel: 8, Channels: 3}
	data, err := workload.GenerateEncryption(spec, 5)
	if err != nil {
		log.Fatal(err)
	}
	// Images are a few bytes short of a page; pad to page boundaries.
	pad := func(b []byte) []byte {
		out := make([]byte, ps)
		copy(out, b)
		return out
	}
	key := pad(data.Key.Bytes())

	fmt.Printf("encrypting %d images in-flash (XOR with key image)\n", spec.NumImages)
	var ciphers [][]byte
	for i, img := range data.Images {
		ori := pad(img.Bytes())
		// Location-free layout: original and key aligned in LSB pages.
		oriLPN, keyLPN := uint64(i*2), uint64(i*2+1)
		if err := dev.WriteOperandGroup([]uint64{oriLPN, keyLPN}, [][]byte{ori, key}); err != nil {
			log.Fatal(err)
		}
		r, err := dev.Bitwise(parabit.Xor, oriLPN, keyLPN, parabit.LocationFree)
		if err != nil {
			log.Fatal(err)
		}
		want := pad(data.Ciphers[i].Bytes())
		if !bytes.Equal(r.Data, want) {
			log.Fatalf("image %d: cipher differs from golden", i)
		}
		ciphers = append(ciphers, r.Data)
		if i == 0 {
			fmt.Printf("  per-image XOR latency: %v\n", r.Latency)
		}
	}

	// Decrypt the first image in-flash: cipher XOR key = original.
	cipherLPN, keyLPN := uint64(100), uint64(101)
	if err := dev.WriteOperandGroup([]uint64{cipherLPN, keyLPN}, [][]byte{ciphers[0], key}); err != nil {
		log.Fatal(err)
	}
	r, err := dev.Bitwise(parabit.Xor, cipherLPN, keyLPN, parabit.LocationFree)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(r.Data, pad(data.Images[0].Bytes())) {
		log.Fatal("decryption did not recover the original")
	}
	fmt.Println("  decrypt(encrypt(x)) == x verified in-flash")

	s := dev.Stats()
	fmt.Printf("device: %d bitwise ops, %d SROs, %d injected bit flips (fresh cells)\n",
		s.BitwiseOps, s.SROs, s.InjectedFlips)

	// Paper scale.
	fmt.Println("\npaper scale (100,000 images, 144 GB):")
	out, err := parabit.RunExperiment("fig14c")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}
