// TLC extension (paper §4.4.1): three operands co-located in one TLC
// cell, combined by a single short latching-circuit sequence. The
// segmentation recognition (Y AND U AND V) becomes one sense per wave.
//
// Run with: go run ./examples/tlc
package main

import (
	"fmt"
	"log"
	"math/rand"

	"parabit"
)

func main() {
	dev, err := parabit.NewDevice(parabit.WithTLCGeometry())
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	var planes [3][]byte
	for i := range planes {
		planes[i] = make([]byte, dev.PageSize())
		rng.Read(planes[i])
	}

	// Y, U, V class planes into the LSB, CSB and MSB pages of one
	// wordline: the whole 3-way recognition is then a single sense.
	lpns := [3]uint64{0, 1, 2}
	if err := dev.WriteOperandTriple(lpns, planes); err != nil {
		log.Fatal(err)
	}

	fmt.Println("op     latency   ok")
	for _, op := range parabit.Op3s {
		r, err := dev.Bitwise3(op, lpns)
		if err != nil {
			log.Fatal(err)
		}
		ok := true
		for i := range r.Data {
			for b := 0; b < 8; b++ {
				x := planes[0][i]&(1<<b) != 0
				y := planes[1][i]&(1<<b) != 0
				z := planes[2][i]&(1<<b) != 0
				if (r.Data[i]&(1<<b) != 0) != op.Eval(x, y, z) {
					ok = false
				}
			}
		}
		fmt.Printf("%-6s %-9v %v\n", op, r.Latency, ok)
	}

	s := dev.Stats()
	fmt.Printf("\nAND3 is one sense: %d SROs across the four ops (1+2+1+2)\n", s.SROs)

	// The paper-scale comparison.
	out, err := parabit.RunExperiment("ext-tlc")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(out)
}
