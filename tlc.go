package parabit

import (
	"fmt"
	"time"

	"parabit/internal/flash"
	"parabit/internal/latch"
	"parabit/internal/sched"
)

// Op3 is a three-operand bitwise operation on a TLC device (§4.4.1): the
// three operand bits live in the LSB, CSB and MSB pages of one TLC cell,
// and the operation is a short latching-circuit sequence — AND3 is a
// single sense at VREAD1, the paper's own example.
type Op3 uint8

// The supported three-operand operations.
const (
	And3 Op3 = iota
	Or3
	Nand3
	Nor3
)

// Op3s lists them all.
var Op3s = []Op3{And3, Or3, Nand3, Nor3}

func (o Op3) String() string { return o.latch().String() }

func (o Op3) latch() latch.TLCOp3 {
	if o > Nor3 {
		panic(fmt.Sprintf("parabit: invalid op3 %d", uint8(o)))
	}
	return latch.TLCOp3(o)
}

// Eval computes the operation on three bits.
func (o Op3) Eval(a, b, c bool) bool { return o.latch().Eval(a, b, c) }

// WithTLCGeometry selects a small TLC device (three pages per wordline,
// TLC timing): the §4.4.1 extension. Three-operand operations
// (WriteOperandTriple + Bitwise3) become available; the MLC two-operand
// schemes are rejected by TLC hardware.
func WithTLCGeometry() Option {
	return func(c *config) {
		c.cfg.Geometry = flash.SmallTLC()
		c.cfg.Timing = flash.TLCTiming()
	}
}

// WriteOperandTriple stores three operand pages co-located in one TLC
// wordline. TLC devices only.
func (d *Device) WriteOperandTriple(lpns [3]uint64, data [3][]byte) error {
	_, err := wait(d.sched.Submit(sched.Command{
		Kind:  sched.KindWriteTriple,
		LPNs:  lpns[:],
		Pages: data[:],
	}))
	return err
}

// Bitwise3 executes a three-operand operation over a co-located TLC
// triple and returns the bit-exact result with its modeled latency.
func (d *Device) Bitwise3(op Op3, lpns [3]uint64) (Result, error) {
	return wait(d.sched.Submit(sched.Command{
		Kind: sched.KindBitwiseTriple,
		LPNs: lpns[:],
		Op3:  op.latch(),
	}))
}

// Op3Latency returns the in-flash latency of a three-operand TLC
// operation under TLC timing.
func Op3Latency(op Op3) time.Duration {
	return (time.Duration(latch.TLCForOp(op.latch()).SROs()) *
		flash.TLCTiming().SenseSRO.Std())
}
