package parabit

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func newTestDevice(t *testing.T, opts ...Option) *Device {
	t.Helper()
	d, err := NewDevice(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func pageOf(d *Device, seed int64) []byte {
	b := make([]byte, d.PageSize())
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestPublicBitwiseAllOpsAllSchemes(t *testing.T) {
	for _, scheme := range Schemes {
		d := newTestDevice(t)
		x, y := pageOf(d, 1), pageOf(d, 2)
		switch scheme {
		case PreAllocated:
			if err := d.WriteOperandPair(0, 1, x, y); err != nil {
				t.Fatal(err)
			}
		case LocationFree:
			if err := d.WriteOperandGroup([]uint64{0, 1}, [][]byte{x, y}); err != nil {
				t.Fatal(err)
			}
		default:
			if err := d.WriteOperand(0, x); err != nil {
				t.Fatal(err)
			}
			if err := d.WriteOperand(1, y); err != nil {
				t.Fatal(err)
			}
		}
		for _, op := range Ops {
			r, err := d.Bitwise(op, 0, 1, scheme)
			if err != nil {
				t.Fatalf("%v/%v: %v", scheme, op, err)
			}
			for i := range r.Data {
				for b := 0; b < 8; b++ {
					first := x[i]&(1<<b) != 0
					second := y[i]&(1<<b) != 0
					if (r.Data[i]&(1<<b) != 0) != op.Eval(first, second) {
						t.Fatalf("%v/%v: bit %d.%d wrong", scheme, op, i, b)
					}
				}
			}
			if r.Latency <= 0 {
				t.Fatalf("%v/%v: zero latency", scheme, op)
			}
		}
	}
}

func TestPublicLatenciesMatchPaper(t *testing.T) {
	d := newTestDevice(t)
	x, y := pageOf(d, 3), pageOf(d, 4)
	if err := d.WriteOperandPair(0, 1, x, y); err != nil {
		t.Fatal(err)
	}
	r, err := d.Bitwise(Xor, 0, 1, PreAllocated)
	if err != nil {
		t.Fatal(err)
	}
	if r.Latency != 100*time.Microsecond {
		t.Errorf("XOR latency = %v, want 100µs", r.Latency)
	}
	r, _ = d.Bitwise(And, 0, 1, PreAllocated)
	if r.Latency != 25*time.Microsecond {
		t.Errorf("AND latency = %v, want 25µs", r.Latency)
	}
	if OpLatency(Xor) != 100*time.Microsecond || OpLatency(And) != 25*time.Microsecond {
		t.Error("OpLatency wrong")
	}
	if OpLatencyLocFree(And) != 50*time.Microsecond {
		t.Errorf("locfree AND latency = %v", OpLatencyLocFree(And))
	}
}

func TestPublicReduce(t *testing.T) {
	d := newTestDevice(t)
	const k = 5
	lpns := make([]uint64, k)
	data := make([][]byte, k)
	for i := range lpns {
		lpns[i] = uint64(i)
		data[i] = pageOf(d, int64(10+i))
	}
	if err := d.WriteOperandGroup(lpns, data); err != nil {
		t.Fatal(err)
	}
	r, err := d.Reduce(And, lpns, LocationFree)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), data[0]...)
	for _, page := range data[1:] {
		for i := range want {
			want[i] &= page[i]
		}
	}
	if !bytes.Equal(r.Data, want) {
		t.Fatal("reduction wrong")
	}
	if _, err := d.Reduce(Nand, lpns, LocationFree); err == nil {
		t.Fatal("non-associative reduce accepted")
	}
}

func TestPublicFormula(t *testing.T) {
	d := newTestDevice(t)
	pages := make([][]byte, 4)
	for i := range pages {
		pages[i] = pageOf(d, int64(20+i))
	}
	d.WriteOperandPair(0, 1, pages[0], pages[1])
	d.WriteOperandPair(2, 3, pages[2], pages[3])
	f := Formula{
		Terms: []Term{
			{First: Operand{LPN: 0}, Second: Operand{LPN: 1}, Op: And},
			{First: Operand{LPN: 2}, Second: Operand{LPN: 3}, Op: Or},
		},
		Combine: []Op{Xor},
	}
	res, err := d.Execute(f, PreAllocated)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pages) != 1 {
		t.Fatalf("pages = %d", len(res.Pages))
	}
	want := make([]byte, d.PageSize())
	for i := range want {
		want[i] = (pages[0][i] & pages[1][i]) ^ (pages[2][i] | pages[3][i])
	}
	if !bytes.Equal(res.Pages[0], want) {
		t.Fatal("formula result wrong")
	}
	if res.HostLatency <= res.Latency {
		t.Fatal("host latency missing")
	}
}

func TestPublicWriteReadRoundTrip(t *testing.T) {
	d := newTestDevice(t)
	data := pageOf(d, 30)
	if err := d.Write(5, data); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip corrupted")
	}
}

func TestPublicStats(t *testing.T) {
	d := newTestDevice(t)
	x, y := pageOf(d, 40), pageOf(d, 41)
	d.WriteOperand(0, x)
	d.WriteOperand(1, y)
	if _, err := d.Bitwise(And, 0, 1, Reallocated); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.BitwiseOps != 1 || s.Reallocations != 1 || s.Programs < 4 {
		t.Fatalf("stats %+v", s)
	}
	if s.WriteAmplification <= 1 {
		t.Fatalf("WA = %v, expected > 1 after realloc", s.WriteAmplification)
	}
	if d.Elapsed() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	d.Reclaim()
}

func TestPublicErrorModel(t *testing.T) {
	// With the error model installed and a cycled device, ParaBit results
	// can carry bit flips; a fresh device's results are clean.
	d := newTestDevice(t, WithErrorModel(1))
	x, y := pageOf(d, 50), pageOf(d, 51)
	d.WriteOperandPair(0, 1, x, y)
	r, err := d.Bitwise(Xor, 0, 1, PreAllocated)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh blocks: zero P/E, so no injected errors.
	for i := range r.Data {
		if r.Data[i] != x[i]^y[i] {
			t.Fatal("fresh-device result corrupted")
		}
	}
	if d.Stats().InjectedFlips != 0 {
		t.Fatal("flips injected at zero P/E")
	}
}

func TestPublicBitwiseToHost(t *testing.T) {
	d := newTestDevice(t)
	x, y := pageOf(d, 60), pageOf(d, 61)
	d.WriteOperandPair(0, 1, x, y)
	r, err := d.BitwiseToHost(Or, 0, 1, PreAllocated)
	if err != nil {
		t.Fatal(err)
	}
	if r.HostLatency <= r.Latency {
		t.Fatal("host latency not larger than device latency")
	}
}

func TestPlanReducePublic(t *testing.T) {
	p := PlanReduce(Reallocated, And, 360, 100_000_000)
	if p.ComputeSeconds < 5.5 || p.ComputeSeconds > 7 {
		t.Errorf("bitmap ReAlloc plan = %.2fs, want ≈6.1", p.ComputeSeconds)
	}
	if p.Reallocations != 359 {
		t.Errorf("reallocations = %d", p.Reallocations)
	}
}

func TestRunExperimentPublic(t *testing.T) {
	out, err := RunExperiment("fig13a")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "XOR") || !strings.Contains(out, "100.0µs") {
		t.Fatalf("fig13a output:\n%s", out)
	}
	if _, err := RunExperiment("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	ids := Experiments()
	if len(ids) != 16 {
		t.Fatalf("%d experiments", len(ids))
	}
}

func TestBadOpAndSchemePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid op accepted")
		}
	}()
	_ = Op(99).String()
}

func TestPublicECCAsymmetry(t *testing.T) {
	// With ECC + an aggressive noise model on a cycled device, baseline
	// reads come back clean while ParaBit results carry errors — §4.4.3
	// made observable through the public API.
	d := newTestDevice(t, WithErrorModel(7), WithECC())
	// Age a block by cycling the whole device's first blocks via churn:
	// write/overwrite the same LPNs enough to trigger GC erases.
	data := pageOf(d, 70)
	// Over a device-capacity of overwrites so GC erases blocks.
	for i := 0; i < 40000; i++ {
		if err := d.Write(uint64(i%16), data); err != nil {
			t.Fatal(err)
		}
	}
	// Baseline read: corrected, identical to the last write.
	got, err := d.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("baseline read corrupted despite ECC")
	}
	s := d.Stats()
	if s.Erases == 0 {
		t.Fatal("churn did not cycle any blocks")
	}
}

func TestStudiesPublicAPI(t *testing.T) {
	seg, err := SegmentationStudy(200_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(seg) != 5 {
		t.Fatalf("%d breakdowns", len(seg))
	}
	// Order: PIM, ISC, ReAlloc, ParaBit, LocFree; ParaBit moves no
	// operands and wins against PIM.
	if seg[0].Scheme != "PIM" || seg[3].Scheme != "ParaBit" {
		t.Fatalf("order: %v, %v", seg[0].Scheme, seg[3].Scheme)
	}
	if seg[3].OperandMoveSeconds != 0 {
		t.Fatal("ParaBit moved operands")
	}
	if seg[3].PipelinedSeconds >= seg[0].TotalSeconds {
		t.Fatal("ParaBit not faster than PIM")
	}
	if _, err := SegmentationStudy(0); err == nil {
		t.Fatal("zero images accepted")
	}
	bm, err := BitmapStudy(12)
	if err != nil {
		t.Fatal(err)
	}
	if bm[2].ReallocatedGB <= 0 {
		t.Fatal("bitmap ReAlloc volume missing")
	}
	if _, err := BitmapStudy(-1); err == nil {
		t.Fatal("negative months accepted")
	}
	enc, err := EncryptionStudy(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if enc[2].TotalSeconds != enc[3].TotalSeconds {
		t.Fatal("encryption ParaBit != ReAlloc")
	}
	if _, err := EncryptionStudy(0); err == nil {
		t.Fatal("zero images accepted")
	}
}

func TestRunExperimentCSV(t *testing.T) {
	out, err := RunExperimentCSV("endurance")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 3 workloads
		t.Fatalf("%d CSV lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "workload,") {
		t.Fatalf("header: %q", lines[0])
	}
	if _, err := RunExperimentCSV("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestInstallFaultPlanPublicAPI(t *testing.T) {
	d := newTestDevice(t)
	if err := d.InstallFaultPlan([]byte(`{"rules": [{"type": "warp-core-breach"}]}`)); err == nil {
		t.Fatal("invalid plan accepted")
	}
	if err := d.InstallFaultPlan([]byte(`not json`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	plan := `{"seed": 11, "rules": [{"type": "stuck-block", "plane": 0, "block": 0}]}`
	if err := d.InstallFaultPlan([]byte(plan)); err != nil {
		t.Fatal(err)
	}
	sink := d.EnableTelemetry(false)
	// Enough writes that one allocation lands on plane 0 block 0.
	for lpn := uint64(0); lpn < 16; lpn++ {
		if err := d.Write(lpn, pageOf(d, int64(lpn))); err != nil {
			t.Fatalf("write %d: %v", lpn, err)
		}
	}
	fs := d.FaultStats()
	if fs.StuckBlock == 0 || fs.Injected == 0 {
		t.Errorf("stuck block never hit: %+v", fs)
	}
	if fs.BlocksRetired == 0 || fs.ResteeredWrites == 0 {
		t.Errorf("no graceful degradation recorded: %+v", fs)
	}
	if st := d.Stats(); st.InjectedFaults == 0 {
		t.Errorf("Stats.InjectedFaults = 0 after injections")
	}
	// The injection counters mirror into the telemetry sink.
	if got := sink.Counter("faults.stuck_block").Value(); got == 0 {
		t.Error("telemetry counter faults.stuck_block never incremented")
	}
	if got := sink.Counter("ftl.bad_blocks.retired").Value(); got == 0 {
		t.Error("telemetry counter ftl.bad_blocks.retired never incremented")
	}
	d.ClearFaultPlan()
	before := d.FaultStats().Injected
	for lpn := uint64(16); lpn < 24; lpn++ {
		if err := d.Write(lpn, pageOf(d, int64(lpn))); err != nil {
			t.Fatal(err)
		}
	}
	if after := d.FaultStats().Injected; after != before {
		t.Errorf("disarmed plan kept injecting: %d -> %d", before, after)
	}
}
