package parabit_test

import (
	"fmt"
	"log"

	"parabit"
)

// The minimal end-to-end flow: co-locate two operand pages in one MLC
// wordline and compute on them in-flash.
func ExampleDevice_Bitwise() {
	dev, err := parabit.NewDevice(parabit.WithSmallGeometry())
	if err != nil {
		log.Fatal(err)
	}
	x := make([]byte, dev.PageSize())
	y := make([]byte, dev.PageSize())
	x[0], y[0] = 0b1100, 0b1010

	// x into the LSB page, y into the MSB page of one wordline.
	if err := dev.WriteOperandPair(0, 1, x, y); err != nil {
		log.Fatal(err)
	}
	r, err := dev.Bitwise(parabit.And, 0, 1, parabit.PreAllocated)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%04b AND %04b = %04b in %v\n", x[0], y[0], r.Data[0], r.Latency)
	// Output: 1100 AND 1010 = 1000 in 25µs
}

// A location-free reduction: aligned LSB operands fold in one chained
// operation, one extra sense per operand.
func ExampleDevice_Reduce() {
	dev, err := parabit.NewDevice(parabit.WithSmallGeometry())
	if err != nil {
		log.Fatal(err)
	}
	lpns := []uint64{0, 1, 2, 3}
	pages := make([][]byte, len(lpns))
	for i := range pages {
		pages[i] = make([]byte, dev.PageSize())
		pages[i][0] = byte(0xF0 | 1<<i)
	}
	if err := dev.WriteOperandGroup(lpns, pages); err != nil {
		log.Fatal(err)
	}
	r, err := dev.Reduce(parabit.And, lpns, parabit.LocationFree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AND of 4 pages = %#x in %v\n", r.Data[0], r.Latency)
	// Output: AND of 4 pages = 0xf0 in 100µs
}

// The column store: bitmap-index queries that execute inside the SSD.
func ExampleColumnStore() {
	dev, err := parabit.NewDevice(parabit.WithSmallGeometry())
	if err != nil {
		log.Fatal(err)
	}
	cs, err := parabit.NewColumnStore(dev, 16)
	if err != nil {
		log.Fatal(err)
	}
	cs.Put("even", []byte{0b01010101, 0b01010101})
	cs.Put("low", []byte{0xFF, 0x00})
	r, err := cs.And("even", "low")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("even AND low: %d users, bits %08b\n", r.Count, r.Data[0])
	// Output: even AND low: 4 users, bits 01010101
}

// TLC mode (§4.4.1): three operands in one cell, AND3 in a single sense.
func ExampleDevice_Bitwise3() {
	dev, err := parabit.NewDevice(parabit.WithTLCGeometry())
	if err != nil {
		log.Fatal(err)
	}
	pages := [3][]byte{
		make([]byte, dev.PageSize()),
		make([]byte, dev.PageSize()),
		make([]byte, dev.PageSize()),
	}
	pages[0][0], pages[1][0], pages[2][0] = 0b1110, 0b1101, 0b1011
	lpns := [3]uint64{0, 1, 2}
	if err := dev.WriteOperandTriple(lpns, pages); err != nil {
		log.Fatal(err)
	}
	r, err := dev.Bitwise3(parabit.And3, lpns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AND3 = %04b in %v\n", r.Data[0], r.Latency)
	// Output: AND3 = 1000 in 60µs
}

// Regenerating one of the paper's tables.
func ExampleRunExperiment() {
	out, err := parabit.RunExperiment("endurance")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(out) > 0)
	// Output: true
}
