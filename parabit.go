// Package parabit is a full-system reproduction of "ParaBit: Processing
// Parallel Bitwise Operations in NAND Flash Memory based SSDs" (Gao et
// al., MICRO '21): in-flash bulk bitwise computation performed by
// re-sequencing the MLC sense-amplifier latching circuit during reads.
//
// The package offers three layers:
//
//   - Device: a functional, cycle-accounted simulated SSD. Write operand
//     data with the ParaBit-friendly layouts (co-located pairs, aligned
//     LSB groups), then execute bitwise operations, reductions and whole
//     formulas under any of the paper's three schemes. Every result is
//     bit-exact and carries the modeled latency.
//   - Analytic planning: PlanReduce and the case-study planners compute
//     paper-scale execution times (hundreds of GB) from the same cost
//     model the functional device implements.
//   - Experiments: RunExperiment regenerates any table or figure of the
//     paper's evaluation as a formatted text table.
//
// The quickstart in examples/quickstart shows the minimal end-to-end use.
package parabit

import (
	"errors"
	"fmt"
	"io"
	"time"

	"parabit/internal/faults"
	"parabit/internal/flash"
	"parabit/internal/latch"
	"parabit/internal/persist"
	"parabit/internal/plan"
	"parabit/internal/reliability"
	"parabit/internal/sched"
	"parabit/internal/sim"
	"parabit/internal/ssd"
	"parabit/internal/telemetry"
)

// Op is a bitwise operation ParaBit can execute in flash.
type Op uint8

// The seven operations of the paper's Table 1. NotFirst and NotSecond are
// the two halves of the NOT row: they invert the first or second operand
// respectively (the LSB- and MSB-resident bit in the co-located layout).
const (
	And Op = iota
	Or
	Xnor
	Nand
	Nor
	Xor
	NotFirst
	NotSecond
)

// Ops lists every operation.
var Ops = []Op{And, Or, Xnor, Nand, Nor, Xor, NotFirst, NotSecond}

func (o Op) String() string { return o.latch().String() }

func (o Op) latch() latch.Op {
	if o > NotSecond {
		panic(fmt.Sprintf("parabit: invalid op %d", uint8(o)))
	}
	return latch.Op(o)
}

// Eval computes the operation on two bits (the golden semantics).
func (o Op) Eval(first, second bool) bool { return o.latch().Eval(first, second) }

// Scheme selects the execution strategy (paper §5.2).
type Scheme uint8

const (
	// PreAllocated is the paper's "ParaBit": operands were written
	// co-located into shared MLC cells, so operations sense directly.
	PreAllocated Scheme = iota
	// Reallocated is "ParaBit-ReAlloc": operands are gathered into
	// shared cells immediately before each operation.
	Reallocated
	// LocationFree is "ParaBit-LocFree": operands in aligned LSB pages
	// are sensed through the extended latching circuit, no data movement.
	LocationFree
	// FlashCosmos is the Flash-Cosmos extension: N-operand AND/OR
	// reductions over block-colocated, ESP-programmed operands (the
	// WriteOperandMWSGroup layout) execute in one multi-wordline sense,
	// falling back to pairwise LocationFree execution when colocation, the
	// per-sense operand cap, or the op's algebra rules the single sense
	// out.
	FlashCosmos
)

// Schemes lists every scheme, in declaration order; it is derived from
// the one scheme registry in internal/ssd, so test matrices and sweeps
// ranging over it extend automatically when a scheme is added.
var Schemes = func() []Scheme {
	out := make([]Scheme, len(ssd.Schemes))
	for i, s := range ssd.Schemes {
		out[i] = Scheme(s)
	}
	return out
}()

func (s Scheme) String() string { return s.ssd().String() }

// ParseScheme resolves a scheme by its String() name, case-insensitively
// ("ParaBit", "ParaBit-ReAlloc", "ParaBit-LocFree", "Flash-Cosmos").
func ParseScheme(name string) (Scheme, error) {
	s, err := ssd.ParseScheme(name)
	if err != nil {
		return 0, err
	}
	return Scheme(s), nil
}

func (s Scheme) ssd() ssd.Scheme {
	if int(s) >= len(ssd.Schemes) {
		panic(fmt.Sprintf("parabit: invalid scheme %d", uint8(s)))
	}
	return ssd.Scheme(s)
}

// Result is the outcome of an in-flash operation: the bit-exact result
// data and the modeled device latency from issue to result-in-buffer.
type Result struct {
	Data    []byte
	Latency time.Duration
	// HostLatency additionally covers shipping the result to the host;
	// zero unless the call ships results.
	HostLatency time.Duration
}

// Device is the public simulated ParaBit SSD. It is safe for concurrent
// use: every operation goes through a command scheduler that serializes
// device mutations while letting commands submitted concurrently share a
// virtual issue instant, so the simulated plane/channel parallelism
// applies across callers. See Flush for the drain barrier and Stats for
// the scheduler's queue counters.
type Device struct {
	// dev is the raw single-threaded device; it must only be touched
	// through sched (or inside sched.Exclusive).
	dev    *ssd.Device
	sched  *sched.Scheduler
	sink   *telemetry.Sink
	faults *faults.Engine
}

// Option configures a Device.
type Option func(*config)

type config struct {
	cfg        ssd.Config
	noise      *reliability.Model
	wantECC    bool
	persistDir string
	snapEvery  int
}

// WithPaperGeometry selects the paper's 512 GB, 1024-plane SSD (§5.1).
// This is the default.
func WithPaperGeometry() Option {
	return func(c *config) { c.cfg.Geometry = flash.Default() }
}

// WithSmallGeometry selects an 8 MB functional-test geometry: same
// behaviour, tiny footprint. Recommended for examples and tests that
// write real data.
func WithSmallGeometry() Option {
	return func(c *config) { c.cfg.Geometry = flash.Small() }
}

// WithScrambling enables or disables the data scrambler on the normal
// write path (operand writes always bypass it; §4.3.2).
func WithScrambling(on bool) Option {
	return func(c *config) { c.cfg.Scramble = on }
}

// WithErrorModel installs the paper-calibrated read-noise model (§5.8):
// ParaBit results on cycled blocks acquire raw bit errors that grow with
// P/E count and sensing count. seed makes runs reproducible.
func WithErrorModel(seed int64) Option {
	return func(c *config) { c.noise = reliability.NewModel(seed) }
}

// WithQueryCache bounds the controller-DRAM result cache the query
// planner keeps hot intermediates in, in bytes. Zero keeps the default
// (64 pages); negative disables caching.
func WithQueryCache(bytes int64) Option {
	return func(c *config) { c.cfg.QueryCacheBytes = bytes }
}

// WithECC installs a SEC-DED codec over 512-byte sectors (or the page
// size, when pages are smaller) on the baseline read path and makes
// ordinary reads experience the raw errors of the noise model — which
// the codec then corrects. ParaBit results still bypass correction
// (§4.4.3): the asymmetry the paper's reliability study measures.
// Requires WithErrorModel for the errors to exist.
func WithECC() Option {
	return func(c *config) { c.wantECC = true }
}

// ErrPowerCut reports an operation refused or interrupted by an
// injected power cut (the "power-cut" fault-plan rule): the device is
// dead and every call fails until the store is reopened with Open.
// Match with errors.Is; operations the cut caught mid-flash-program
// instead surface a flash fault error of kind power-cut.
var ErrPowerCut = persist.ErrPowerCut

// WithPersistence backs the device with an on-disk journal+snapshot
// store in dir (created if absent; must not already hold a store when
// used with NewDevice). Every acknowledged write is durable before its
// call returns; Open recovers the device from dir after a crash or a
// clean Close. See internal/persist for the on-disk formats.
func WithPersistence(dir string) Option {
	return func(c *config) { c.persistDir = dir }
}

// WithSnapshotEvery sets the journal compaction threshold: a snapshot
// replaces the journal after n committed records. Zero keeps the
// default; negative disables periodic snapshots (the journal then only
// compacts on Close). Meaningful only with WithPersistence.
func WithSnapshotEvery(n int) Option {
	return func(c *config) { c.snapEvery = n }
}

// NewDevice builds a simulated ParaBit SSD.
func NewDevice(opts ...Option) (*Device, error) {
	c := config{cfg: ssd.DefaultConfig()}
	c.cfg.Geometry = flash.Small() // default to the cheap geometry
	for _, o := range opts {
		o(&c)
	}
	if c.wantECC {
		sector := 512
		if c.cfg.Geometry.PageSize < sector {
			sector = c.cfg.Geometry.PageSize
		}
		c.cfg.ECCSectorBytes = sector
	}
	var dev *ssd.Device
	var err error
	if c.persistDir != "" {
		dev, err = ssd.Create(c.persistDir, c.cfg, c.snapEvery)
	} else {
		dev, err = ssd.New(c.cfg)
	}
	if err != nil {
		return nil, err
	}
	if err := c.finish(dev); err != nil {
		return nil, err
	}
	return &Device{dev: dev, sched: sched.New(dev)}, nil
}

// finish applies the post-construction options shared by NewDevice and
// Open: the read-noise model and the noisy-ECC baseline.
func (c *config) finish(dev *ssd.Device) error {
	if c.noise != nil {
		dev.Array().SetCorruptor(c.noise)
	}
	if c.wantECC {
		if err := dev.Array().SetNoisyBaseline(true); err != nil {
			return err
		}
	}
	return nil
}

// Recovery summarizes one mount of a persistent device: how much
// journal replay it took to rebuild the crash-time state.
type Recovery struct {
	// ReplayedRecords is the number of committed journal records
	// re-executed on top of the snapshot.
	ReplayedRecords int64
	// SkippedIntents counts journaled intents without a commit record —
	// writes in flight at the crash, never acknowledged, not recovered.
	SkippedIntents int64
	// TornBytes is the length of the incomplete journal tail truncated
	// at the mount (0 after a clean shutdown).
	TornBytes int64
	// ReplayTime is the simulated time the replayed operations spanned.
	ReplayTime time.Duration
}

// Open recovers a persistent device from a directory written by a
// device built with WithPersistence: the last snapshot is loaded, the
// journal tail is replayed (a torn final record is truncated, exactly
// as power-fail-interrupted hardware would), and the FTL's invariants
// are audited before the device accepts commands. Geometry and layout
// come from the on-disk store; pass only behavioural options
// (WithErrorModel, WithECC, WithQueryCache is ignored in favour of the
// stored config). Every write acknowledged by the previous incarnation
// is readable, byte-identical; unacknowledged writes are absent.
func Open(dir string, opts ...Option) (*Device, Recovery, error) {
	var c config
	for _, o := range opts {
		o(&c)
	}
	dev, info, err := ssd.Open(dir, c.snapEvery)
	if err != nil {
		return nil, Recovery{}, err
	}
	if err := c.finish(dev); err != nil {
		return nil, Recovery{}, err
	}
	rec := Recovery{
		ReplayedRecords: info.ReplayedRecords,
		SkippedIntents:  info.SkippedIntents,
		TornBytes:       info.TornBytes,
		ReplayTime:      info.RecoveryTime.Std(),
	}
	return &Device{dev: dev, sched: sched.New(dev)}, rec, nil
}

// Close drains the command queue and shuts the device down. On a
// persistent device it takes a final compaction snapshot, so the next
// Open replays nothing; in-memory devices just drain. The device must
// not be used after Close.
func (d *Device) Close() error { return d.sched.Close() }

// PersistStats reports the persistence layer's activity; ok is false
// for in-memory devices. It drains the command queue first so the
// counters cover every submitted command.
type PersistStats struct {
	// JournalRecords / JournalBytes count appended journal records
	// (intents and commits) and their on-disk bytes in this incarnation.
	JournalRecords int64
	JournalBytes   int64
	// Snapshots counts compaction snapshots taken.
	Snapshots int64
	// Recovery accounting for the mount that created this device (all
	// zero for devices built by NewDevice).
	ReplayedRecords int64
	SkippedIntents  int64
	TornBytes       int64
}

// PersistStats returns a snapshot of the persistence counters.
func (d *Device) PersistStats() (PersistStats, bool) {
	var ps PersistStats
	ok := false
	d.sched.Exclusive(func(dev *ssd.Device, _ sim.Time) {
		st, persistent := dev.PersistStats()
		if !persistent {
			return
		}
		ok = true
		ps = PersistStats{
			JournalRecords:  st.JournalRecords,
			JournalBytes:    st.JournalBytes,
			Snapshots:       st.Snapshots,
			ReplayedRecords: st.ReplayedRecords,
			SkippedIntents:  st.SkippedIntents,
			TornBytes:       st.TornBytes,
		}
	})
	return ps, ok
}

// PageSize returns the flash page size in bytes; operand buffers must be
// exactly one page.
func (d *Device) PageSize() int { return d.dev.PageSize() }

// UserPages returns the logical pages addressable by the host.
func (d *Device) UserPages() uint64 { return d.dev.UserPages() }

// wait turns a ticket's outcome into the public Result shape.
func wait(t *sched.Ticket) (Result, error) {
	r := t.Wait()
	if r.Err != nil {
		return Result{}, r.Err
	}
	out := Result{Data: r.Data, Latency: r.Done.Sub(r.Start).Std()}
	if r.HostDone > 0 {
		out.HostLatency = r.HostDone.Sub(r.Start).Std()
	}
	return out, nil
}

// Write stores a page of ordinary (scrambled) data.
func (d *Device) Write(lpn uint64, data []byte) error {
	_, err := wait(d.sched.Submit(sched.Command{Kind: sched.KindWrite, LPN: lpn, Data: data}))
	return err
}

// WriteOperand stores a bitwise operand page (unscrambled, normal
// placement). Usable by Reallocated-scheme operations.
func (d *Device) WriteOperand(lpn uint64, data []byte) error {
	_, err := wait(d.sched.Submit(sched.Command{Kind: sched.KindWriteOperand, LPN: lpn, Data: data}))
	return err
}

// WriteOperandPair stores two operand pages co-located in one wordline —
// the PreAllocated layout. first lands in the LSB page, second in MSB.
func (d *Device) WriteOperandPair(first, second uint64, firstData, secondData []byte) error {
	_, err := wait(d.sched.Submit(sched.Command{
		Kind:  sched.KindWritePair,
		LPNs:  []uint64{first, second},
		Pages: [][]byte{firstData, secondData},
	}))
	return err
}

// WriteOperandGroup stores operand pages in aligned LSB slots of one
// plane — the LocationFree layout, required for chained reductions.
func (d *Device) WriteOperandGroup(lpns []uint64, data [][]byte) error {
	_, err := wait(d.sched.Submit(sched.Command{
		Kind: sched.KindWriteGroup, LPNs: lpns, Pages: data,
	}))
	return err
}

// WriteOperandMWSGroup stores operand pages in LSB slots of one block,
// ESP-programmed — the FlashCosmos layout whose AND/OR reduction is a
// single multi-wordline sense. The group must fit one block.
func (d *Device) WriteOperandMWSGroup(lpns []uint64, data [][]byte) error {
	_, err := wait(d.sched.Submit(sched.Command{
		Kind: sched.KindWriteMWSGroup, LPNs: lpns, Pages: data,
	}))
	return err
}

// Read returns a logical page's content (descrambled).
func (d *Device) Read(lpn uint64) ([]byte, error) {
	r, err := wait(d.sched.Submit(sched.Command{Kind: sched.KindRead, LPN: lpn}))
	if err != nil {
		return nil, err
	}
	return r.Data, nil
}

// Bitwise executes one two-operand operation in flash under the scheme
// and returns the result with its modeled latency.
func (d *Device) Bitwise(op Op, first, second uint64, scheme Scheme) (Result, error) {
	return wait(d.sched.Submit(sched.Command{
		Kind:   sched.KindBitwise,
		LPNs:   []uint64{first, second},
		Op:     op.latch(),
		Scheme: scheme.ssd(),
	}))
}

// Reduce folds operand pages with an associative operation (And, Or or
// Xor), using the scheme's chained execution (§4.2, §5.3).
func (d *Device) Reduce(op Op, lpns []uint64, scheme Scheme) (Result, error) {
	switch op {
	case And, Or, Xor:
	default:
		return Result{}, errors.New("parabit: Reduce requires And, Or or Xor")
	}
	return wait(d.sched.Submit(sched.Command{
		Kind:   sched.KindReduce,
		LPNs:   lpns,
		Op:     op.latch(),
		Scheme: scheme.ssd(),
	}))
}

// BitwiseToHost executes Bitwise and ships the result over the host
// link, filling HostLatency.
func (d *Device) BitwiseToHost(op Op, first, second uint64, scheme Scheme) (Result, error) {
	return wait(d.sched.Submit(sched.Command{
		Kind:   sched.KindBitwise,
		LPNs:   []uint64{first, second},
		Op:     op.latch(),
		Scheme: scheme.ssd(),
		ToHost: true,
	}))
}

// Query is a bitmap-query expression tree over operand LPNs. Build one
// with QueryLPN and the combinators, or parse the textual form
// ("(1 & 2 & 3) | !(4 ^ 5)") with ParseQuery, then execute it with
// Device.Query. The planner normalizes the tree, fuses associative
// chains into single multi-operand latch programs, shares structurally
// equal sub-queries, and caches hot intermediate results in controller
// DRAM. The zero Query is invalid.
type Query struct{ e *plan.Expr }

// QueryLPN is the leaf query: the content of one operand page.
func QueryLPN(lpn uint64) Query { return Query{plan.Leaf(lpn)} }

// QueryAnd is the conjunction of two or more sub-queries.
func QueryAnd(qs ...Query) Query { return Query{plan.And(exprs(qs)...)} }

// QueryOr is the disjunction of two or more sub-queries.
func QueryOr(qs ...Query) Query { return Query{plan.Or(exprs(qs)...)} }

// QueryXor is the exclusive-or of two or more sub-queries.
func QueryXor(qs ...Query) Query { return Query{plan.Xor(exprs(qs)...)} }

// QueryXnor is the equivalence of exactly two sub-queries.
func QueryXnor(a, b Query) Query { return Query{plan.Xnor(a.e, b.e)} }

// QueryNand is the negated conjunction of exactly two sub-queries.
func QueryNand(a, b Query) Query { return Query{plan.Nand(a.e, b.e)} }

// QueryNor is the negated disjunction of exactly two sub-queries.
func QueryNor(a, b Query) Query { return Query{plan.Nor(a.e, b.e)} }

// QueryNot negates a sub-query. The planner folds negations into the
// complement operations (NAND, NOR, XNOR) where the circuit has them.
func QueryNot(q Query) Query { return Query{plan.Not(q.e)} }

// ParseQuery parses the textual query language: decimal LPNs as leaves;
// operators !, &, |, ^ plus the negated forms ~&, ~|, ~^; parentheses.
// Precedence is ! over & over ^ over |, all left-associative.
func ParseQuery(s string) (Query, error) {
	e, err := plan.Parse(s)
	if err != nil {
		return Query{}, err
	}
	return Query{e}, nil
}

// String renders the query in the ParseQuery syntax.
func (q Query) String() string {
	if q.e == nil {
		return "<invalid query>"
	}
	return q.e.String()
}

func exprs(qs []Query) []*plan.Expr {
	es := make([]*plan.Expr, len(qs))
	for i, q := range qs {
		es[i] = q.e
	}
	return es
}

var errInvalidQuery = errors.New("parabit: invalid (zero) Query")

// Query plans and executes a bitmap-query expression under the scheme:
// associative chains fuse into single multi-operand latch programs,
// repeated sub-queries compute once, and intermediate results are served
// from the controller-DRAM cache while their operand pages are unchanged.
// The result is bit-exact with evaluating the expression over the current
// page contents.
func (d *Device) Query(q Query, scheme Scheme) (Result, error) {
	if q.e == nil {
		return Result{}, errInvalidQuery
	}
	return wait(d.sched.Submit(sched.Command{
		Kind:   sched.KindQuery,
		Query:  q.e,
		Scheme: scheme.ssd(),
	}))
}

// QueryToHost executes Query and ships the result over the host link,
// filling HostLatency.
func (d *Device) QueryToHost(q Query, scheme Scheme) (Result, error) {
	if q.e == nil {
		return Result{}, errInvalidQuery
	}
	return wait(d.sched.Submit(sched.Command{
		Kind:   sched.KindQuery,
		Query:  q.e,
		Scheme: scheme.ssd(),
		ToHost: true,
	}))
}

// QueryStats reports query-planner activity: how much fusion and result
// caching the executed queries enjoyed.
type QueryStats struct {
	// Queries executed, plan steps run, fused chains among them, and the
	// operands those chains covered.
	Queries       int64
	PlanSteps     int64
	FusedChains   int64
	FusedOperands int64
	// NVMeRoundTrips counts queries that travelled the NVMe command
	// encoding (wire-expressible shapes).
	NVMeRoundTrips int64
	// Result-cache activity. Invalidations are entries dropped because an
	// operand page changed (overwrite, GC migration, block retirement)
	// between queries.
	CacheHits          int64
	CacheMisses        int64
	CacheEvictions     int64
	CacheInvalidations int64
	CacheBytes         int64
	CacheEntries       int64
}

// QueryStats returns a snapshot of planner counters. It drains the
// command queue first.
func (d *Device) QueryStats() QueryStats {
	var qs QueryStats
	d.sched.Exclusive(func(dev *ssd.Device, _ sim.Time) {
		st := dev.QueryStats()
		qs = QueryStats{
			Queries:            st.Queries,
			PlanSteps:          st.PlanSteps,
			FusedChains:        st.FusedChains,
			FusedOperands:      st.FusedOperands,
			NVMeRoundTrips:     st.NVMeRoundTrips,
			CacheHits:          st.Cache.Hits,
			CacheMisses:        st.Cache.Misses,
			CacheEvictions:     st.Cache.Evictions,
			CacheInvalidations: st.Cache.Invalidations,
			CacheBytes:         st.Cache.Bytes,
			CacheEntries:       st.Cache.Entries,
		}
	})
	return qs
}

// Pending is a handle to a submitted but not yet awaited operation.
// Submitting several operations before waiting on any of them queues them
// into one dispatch batch: they share a virtual issue instant, so
// independent page operations overlap on the device's planes exactly as
// outstanding commands do in a real SSD's queues.
type Pending struct{ t *sched.Ticket }

// Wait blocks until the operation executes and returns its result. It may
// be called from any goroutine, any number of times.
func (p *Pending) Wait() (Result, error) { return wait(p.t) }

// WriteAsync queues a Write without waiting for it.
func (d *Device) WriteAsync(lpn uint64, data []byte) *Pending {
	return &Pending{d.sched.Submit(sched.Command{Kind: sched.KindWrite, LPN: lpn, Data: data})}
}

// WriteOperandAsync queues a WriteOperand without waiting for it.
func (d *Device) WriteOperandAsync(lpn uint64, data []byte) *Pending {
	return &Pending{d.sched.Submit(sched.Command{Kind: sched.KindWriteOperand, LPN: lpn, Data: data})}
}

// ReadAsync queues a Read; the page content arrives in Result.Data.
func (d *Device) ReadAsync(lpn uint64) *Pending {
	return &Pending{d.sched.Submit(sched.Command{Kind: sched.KindRead, LPN: lpn})}
}

// BitwiseAsync queues a Bitwise without waiting for it.
func (d *Device) BitwiseAsync(op Op, first, second uint64, scheme Scheme) *Pending {
	return &Pending{d.sched.Submit(sched.Command{
		Kind:   sched.KindBitwise,
		LPNs:   []uint64{first, second},
		Op:     op.latch(),
		Scheme: scheme.ssd(),
	})}
}

// QueryAsync queues a Query without waiting for it.
func (d *Device) QueryAsync(q Query, scheme Scheme) *Pending {
	return &Pending{d.sched.Submit(sched.Command{
		Kind:   sched.KindQuery,
		Query:  q.e,
		Scheme: scheme.ssd(),
	})}
}

// ReduceAsync queues a Reduce without waiting for it.
func (d *Device) ReduceAsync(op Op, lpns []uint64, scheme Scheme) *Pending {
	return &Pending{d.sched.Submit(sched.Command{
		Kind:   sched.KindReduce,
		LPNs:   lpns,
		Op:     op.latch(),
		Scheme: scheme.ssd(),
	})}
}

// Flush drains the scheduler: every command submitted so far (from any
// goroutine) executes, and the virtual clock advances past the last of
// them. The time all of them completed is reflected by Elapsed.
func (d *Device) Flush() { d.sched.Flush() }

// Reclaim trims the controller's internal reallocation pool. Call
// between large batches of Reallocated-scheme operations. It drains the
// command queue first.
func (d *Device) Reclaim() {
	d.sched.Exclusive(func(dev *ssd.Device, _ sim.Time) { dev.ReclaimInternal() })
}

// CheckInvariants drains the command queue and audits the FTL's internal
// bookkeeping: every block accounted exactly once across active, full,
// free, reallocation-pool and retired-bad lists, and valid-page counts
// consistent with the mapping. It returns the first violation found, or
// nil. Chaos and fault-injection tests call it after hostile workloads to
// prove degradation never corrupted the translation layer.
func (d *Device) CheckInvariants() error {
	var err error
	d.sched.Exclusive(func(dev *ssd.Device, _ sim.Time) { err = dev.FTL().CheckInvariants() })
	return err
}

// InstallFaultPlan parses a JSON fault plan (see internal/faults for the
// schema: seeded plane outages, stuck blocks, program/erase failure
// rates, latency jitter) and arms it on the device. Faults inject
// deterministically: the same plan, seed and workload reproduce the same
// failures. The FTL absorbs what a real controller would (bad-block
// retirement, write re-steering) and the scheduler retries transient
// outages with simulated-time backoff; only unrecoverable failures
// surface to callers. Installing a plan replaces any previous one; the
// queue drains first.
func (d *Device) InstallFaultPlan(data []byte) error {
	plan, err := faults.ParsePlan(data)
	if err != nil {
		return err
	}
	return d.installFaultPlan(plan)
}

// InstallFaultPlanFile is InstallFaultPlan for a plan file on disk.
func (d *Device) InstallFaultPlanFile(path string) error {
	plan, err := faults.LoadPlan(path)
	if err != nil {
		return err
	}
	return d.installFaultPlan(plan)
}

func (d *Device) installFaultPlan(plan faults.Plan) error {
	var eng *faults.Engine
	var err error
	d.sched.Exclusive(func(dev *ssd.Device, _ sim.Time) {
		eng, err = faults.NewEngine(plan, dev.Array().Geometry())
		if err != nil {
			return
		}
		dev.SetFaultInjector(eng)
	})
	if err != nil {
		return err
	}
	if d.sink != nil {
		eng.SetTelemetry(d.sink)
	}
	d.faults = eng
	return nil
}

// ClearFaultPlan disarms fault injection. Damage already done (retired
// blocks, surfaced errors) persists, and FaultStats keeps reporting the
// disarmed plan's injection counts; only future injections stop.
func (d *Device) ClearFaultPlan() {
	d.sched.Exclusive(func(dev *ssd.Device, _ sim.Time) {
		dev.SetFaultInjector(nil)
	})
}

// FaultStats reports fault-injection activity and the graceful-degradation
// work it triggered. All zeros when no plan was ever installed.
type FaultStats struct {
	// Injection counts, by class (from the armed plan's engine).
	Injected       int64 // total structural faults injected
	PlaneTransient int64
	PlaneDead      int64
	ProgramFails   int64
	EraseFails     int64
	StuckBlock     int64
	// PowerCuts counts power-cut injections: the cut itself plus every
	// operation failed against the dead device afterwards.
	PowerCuts    int64
	JitterEvents int64
	// Scheduler recovery: commands re-issued after a transient fault,
	// and commands that still failed after the last attempt.
	Retries          int64
	RetriesExhausted int64
	// FTL degradation: blocks pulled from circulation, pages migrated to
	// save their data, and writes re-steered onto healthy blocks.
	BlocksRetired    int64
	RetirePagesMoved int64
	ResteeredWrites  int64
}

// FaultStats returns a snapshot of fault and recovery counters. It drains
// the command queue first.
func (d *Device) FaultStats() FaultStats {
	var fs FaultStats
	d.sched.Exclusive(func(dev *ssd.Device, _ sim.Time) {
		ft := dev.FTL().Stats()
		fs.BlocksRetired = ft.BlocksRetired
		fs.RetirePagesMoved = ft.RetirePagesMoved
		fs.ResteeredWrites = ft.ResteeredWrites
	})
	if d.faults != nil {
		es := d.faults.Stats()
		fs.Injected = es.Faults()
		fs.PlaneTransient = es.PlaneTransient
		fs.PlaneDead = es.PlaneDead
		fs.ProgramFails = es.ProgramFails
		fs.EraseFails = es.EraseFails
		fs.StuckBlock = es.StuckBlock
		fs.PowerCuts = es.PowerCuts
		fs.JitterEvents = es.JitterEvents
	}
	ss := d.sched.Stats()
	fs.Retries = ss.Retries
	fs.RetriesExhausted = ss.RetriesExhausted
	return fs
}

// EnableTelemetry attaches a fresh telemetry sink to every layer of the
// device: scheduler queues, controller bitwise paths, FTL maintenance,
// plane/channel occupancy, and the host link. With trace true the sink
// also records spans for export as Chrome trace-event JSON (WriteTrace);
// metrics (counters, gauges, latency histograms) are always on. Safe to
// call on a device with in-flight commands — it drains the queue first.
func (d *Device) EnableTelemetry(trace bool) *telemetry.Sink {
	sink := telemetry.New()
	if trace {
		sink.EnableTrace()
	}
	d.sched.Exclusive(func(dev *ssd.Device, _ sim.Time) { dev.SetTelemetry(sink) })
	d.sched.SetTelemetry(sink)
	if d.faults != nil {
		d.faults.SetTelemetry(sink)
	}
	d.sink = sink
	return sink
}

// Telemetry returns the sink attached by EnableTelemetry, or nil.
func (d *Device) Telemetry() *telemetry.Sink { return d.sink }

// SyncTelemetryGauges refreshes the sink's device-level gauges (flash
// operation totals and write amplification) from the current counters.
// Call before exporting metrics; a nil or absent sink is a no-op.
func (d *Device) SyncTelemetryGauges() {
	if d.sink == nil {
		return
	}
	st := d.Stats()
	d.sink.Gauge("flash.sros").Set(st.SROs)
	d.sink.Gauge("flash.programs").Set(st.Programs)
	d.sink.Gauge("flash.erases").Set(st.Erases)
	d.sink.Gauge("ftl.write_amp_milli").Set(int64(st.WriteAmplification * 1000))
}

// WriteTrace exports the recorded trace as Chrome trace-event JSON (open
// in chrome://tracing or ui.perfetto.dev). Valid, possibly empty, output
// even when telemetry or tracing is disabled.
func (d *Device) WriteTrace(w io.Writer) error {
	d.Flush()
	return d.sink.WriteTrace(w)
}

// WriteMetrics writes the expvar-style metrics summary; it syncs the
// device-level gauges first. No output when telemetry is disabled.
func (d *Device) WriteMetrics(w io.Writer) {
	d.SyncTelemetryGauges()
	d.sink.WriteMetrics(w)
}

// Stats reports device activity counters.
type Stats struct {
	BitwiseOps    int64
	Reallocations int64
	Fallbacks     int64
	SROs          int64
	// MWSSenses counts Flash-Cosmos multi-wordline senses (each is one
	// SRO regardless of its operand count).
	MWSSenses     int64
	Programs      int64
	Erases        int64
	InjectedFlips int64
	// InjectedFaults counts structural faults (failed programs/erases,
	// plane outages) injected by an installed fault plan.
	InjectedFaults int64
	// FTL maintenance activity: garbage collection, read reclaim and
	// static wear leveling runs, with the pages each migrated, plus MSB
	// slots padded to keep paired writes aligned.
	GCRuns            int64
	GCPagesMoved      int64
	ReadReclaims      int64
	ReclaimPagesMoved int64
	StaticWLMoves     int64
	WLPagesMoved      int64
	PaddedPages       int64
	// WriteAmplification is (host+internal writes)/host writes.
	WriteAmplification float64
	// Commands counts scheduler commands executed; Batches how many
	// dispatch rounds carried them; MaxBatch the widest single round
	// (the queue-depth high-water mark across concurrent submitters).
	Commands int64
	Batches  int64
	MaxBatch int
	// Utilization is summed command service time over the virtual
	// makespan: 1.0 is strictly serial execution, higher values measure
	// how much concurrent commands overlapped on the planes.
	Utilization float64
}

// Stats returns a snapshot of the device counters. It drains the command
// queue first, so the counters reflect every submitted command.
func (d *Device) Stats() Stats {
	var st Stats
	d.sched.Exclusive(func(dev *ssd.Device, _ sim.Time) {
		op := dev.Stats()
		fl := dev.Array().Stats()
		ft := dev.FTL().Stats()
		st = Stats{
			BitwiseOps:         op.BitwiseOps,
			Reallocations:      op.Reallocations,
			Fallbacks:          op.Fallbacks,
			SROs:               fl.SROs,
			MWSSenses:          fl.MWSSenses,
			Programs:           fl.Programs,
			Erases:             fl.Erases,
			InjectedFlips:      fl.InjectedFlips,
			InjectedFaults:     fl.InjectedFaults,
			GCRuns:             ft.GCRuns,
			GCPagesMoved:       ft.GCPagesMoved,
			ReadReclaims:       ft.ReadReclaims,
			ReclaimPagesMoved:  ft.ReclaimPagesMoved,
			StaticWLMoves:      ft.StaticWLMoves,
			WLPagesMoved:       ft.WLPagesMoved,
			PaddedPages:        ft.PaddedPages,
			WriteAmplification: ft.WriteAmplification(),
		}
	})
	ss := d.sched.Stats()
	st.Commands = ss.Completed()
	st.Batches = ss.Batches
	st.MaxBatch = ss.MaxBatch
	st.Utilization = ss.Utilization()
	return st
}

// SchedulerStats returns the scheduler's per-queue counters: submission,
// completion and error counts, queue-depth high-water marks, and summed
// service time for each command kind.
func (d *Device) SchedulerStats() sched.Stats { return d.sched.Stats() }

// Elapsed returns the device's virtual clock: total modeled time consumed
// by the operations completed so far. Commands submitted but not yet
// waited on or flushed are not included.
func (d *Device) Elapsed() time.Duration { return sim.Duration(d.sched.Now()).Std() }
