// Package parabit is a full-system reproduction of "ParaBit: Processing
// Parallel Bitwise Operations in NAND Flash Memory based SSDs" (Gao et
// al., MICRO '21): in-flash bulk bitwise computation performed by
// re-sequencing the MLC sense-amplifier latching circuit during reads.
//
// The package offers three layers:
//
//   - Device: a functional, cycle-accounted simulated SSD. Write operand
//     data with the ParaBit-friendly layouts (co-located pairs, aligned
//     LSB groups), then execute bitwise operations, reductions and whole
//     formulas under any of the paper's three schemes. Every result is
//     bit-exact and carries the modeled latency.
//   - Analytic planning: PlanReduce and the case-study planners compute
//     paper-scale execution times (hundreds of GB) from the same cost
//     model the functional device implements.
//   - Experiments: RunExperiment regenerates any table or figure of the
//     paper's evaluation as a formatted text table.
//
// The quickstart in examples/quickstart shows the minimal end-to-end use.
package parabit

import (
	"errors"
	"fmt"
	"time"

	"parabit/internal/flash"
	"parabit/internal/latch"
	"parabit/internal/reliability"
	"parabit/internal/sim"
	"parabit/internal/ssd"
)

// Op is a bitwise operation ParaBit can execute in flash.
type Op uint8

// The seven operations of the paper's Table 1. NotFirst and NotSecond are
// the two halves of the NOT row: they invert the first or second operand
// respectively (the LSB- and MSB-resident bit in the co-located layout).
const (
	And Op = iota
	Or
	Xnor
	Nand
	Nor
	Xor
	NotFirst
	NotSecond
)

// Ops lists every operation.
var Ops = []Op{And, Or, Xnor, Nand, Nor, Xor, NotFirst, NotSecond}

func (o Op) String() string { return o.latch().String() }

func (o Op) latch() latch.Op {
	if o > NotSecond {
		panic(fmt.Sprintf("parabit: invalid op %d", uint8(o)))
	}
	return latch.Op(o)
}

// Eval computes the operation on two bits (the golden semantics).
func (o Op) Eval(first, second bool) bool { return o.latch().Eval(first, second) }

// Scheme selects the execution strategy (paper §5.2).
type Scheme uint8

const (
	// PreAllocated is the paper's "ParaBit": operands were written
	// co-located into shared MLC cells, so operations sense directly.
	PreAllocated Scheme = iota
	// Reallocated is "ParaBit-ReAlloc": operands are gathered into
	// shared cells immediately before each operation.
	Reallocated
	// LocationFree is "ParaBit-LocFree": operands in aligned LSB pages
	// are sensed through the extended latching circuit, no data movement.
	LocationFree
)

// Schemes lists all three.
var Schemes = []Scheme{PreAllocated, Reallocated, LocationFree}

func (s Scheme) String() string { return s.ssd().String() }

func (s Scheme) ssd() ssd.Scheme {
	if s > LocationFree {
		panic(fmt.Sprintf("parabit: invalid scheme %d", uint8(s)))
	}
	return ssd.Scheme(s)
}

// Result is the outcome of an in-flash operation: the bit-exact result
// data and the modeled device latency from issue to result-in-buffer.
type Result struct {
	Data    []byte
	Latency time.Duration
	// HostLatency additionally covers shipping the result to the host;
	// zero unless the call ships results.
	HostLatency time.Duration
}

// Device is the public simulated ParaBit SSD.
type Device struct {
	dev *ssd.Device
	// now is the issue cursor: operations issue at this virtual time and
	// advance it, so sequential API calls observe sequential latencies
	// while batch calls share an issue instant.
	now sim.Time
}

// Option configures a Device.
type Option func(*config)

type config struct {
	cfg     ssd.Config
	noise   *reliability.Model
	wantECC bool
}

// WithPaperGeometry selects the paper's 512 GB, 1024-plane SSD (§5.1).
// This is the default.
func WithPaperGeometry() Option {
	return func(c *config) { c.cfg.Geometry = flash.Default() }
}

// WithSmallGeometry selects an 8 MB functional-test geometry: same
// behaviour, tiny footprint. Recommended for examples and tests that
// write real data.
func WithSmallGeometry() Option {
	return func(c *config) { c.cfg.Geometry = flash.Small() }
}

// WithScrambling enables or disables the data scrambler on the normal
// write path (operand writes always bypass it; §4.3.2).
func WithScrambling(on bool) Option {
	return func(c *config) { c.cfg.Scramble = on }
}

// WithErrorModel installs the paper-calibrated read-noise model (§5.8):
// ParaBit results on cycled blocks acquire raw bit errors that grow with
// P/E count and sensing count. seed makes runs reproducible.
func WithErrorModel(seed int64) Option {
	return func(c *config) { c.noise = reliability.NewModel(seed) }
}

// WithECC installs a SEC-DED codec over 512-byte sectors (or the page
// size, when pages are smaller) on the baseline read path and makes
// ordinary reads experience the raw errors of the noise model — which
// the codec then corrects. ParaBit results still bypass correction
// (§4.4.3): the asymmetry the paper's reliability study measures.
// Requires WithErrorModel for the errors to exist.
func WithECC() Option {
	return func(c *config) { c.wantECC = true }
}

// NewDevice builds a simulated ParaBit SSD.
func NewDevice(opts ...Option) (*Device, error) {
	c := config{cfg: ssd.DefaultConfig()}
	c.cfg.Geometry = flash.Small() // default to the cheap geometry
	for _, o := range opts {
		o(&c)
	}
	if c.wantECC {
		sector := 512
		if c.cfg.Geometry.PageSize < sector {
			sector = c.cfg.Geometry.PageSize
		}
		c.cfg.ECCSectorBytes = sector
	}
	dev, err := ssd.New(c.cfg)
	if err != nil {
		return nil, err
	}
	if c.noise != nil {
		dev.Array().SetCorruptor(c.noise)
	}
	if c.wantECC {
		if err := dev.Array().SetNoisyBaseline(true); err != nil {
			return nil, err
		}
	}
	return &Device{dev: dev}, nil
}

// PageSize returns the flash page size in bytes; operand buffers must be
// exactly one page.
func (d *Device) PageSize() int { return d.dev.PageSize() }

// UserPages returns the logical pages addressable by the host.
func (d *Device) UserPages() uint64 { return d.dev.UserPages() }

// Write stores a page of ordinary (scrambled) data.
func (d *Device) Write(lpn uint64, data []byte) error {
	done, err := d.dev.Write(lpn, data, d.now)
	if err != nil {
		return err
	}
	d.now = done
	return nil
}

// WriteOperand stores a bitwise operand page (unscrambled, normal
// placement). Usable by Reallocated-scheme operations.
func (d *Device) WriteOperand(lpn uint64, data []byte) error {
	done, err := d.dev.WriteOperand(lpn, data, d.now)
	if err != nil {
		return err
	}
	d.now = done
	return nil
}

// WriteOperandPair stores two operand pages co-located in one wordline —
// the PreAllocated layout. first lands in the LSB page, second in MSB.
func (d *Device) WriteOperandPair(first, second uint64, firstData, secondData []byte) error {
	done, err := d.dev.WriteOperandPair(first, second, firstData, secondData, d.now)
	if err != nil {
		return err
	}
	d.now = done
	return nil
}

// WriteOperandGroup stores operand pages in aligned LSB slots of one
// plane — the LocationFree layout, required for chained reductions.
func (d *Device) WriteOperandGroup(lpns []uint64, data [][]byte) error {
	done, err := d.dev.WriteOperandLSBGroup(lpns, data, d.now)
	if err != nil {
		return err
	}
	d.now = done
	return nil
}

// Read returns a logical page's content (descrambled).
func (d *Device) Read(lpn uint64) ([]byte, error) {
	data, done, err := d.dev.Read(lpn, d.now)
	if err != nil {
		return nil, err
	}
	d.now = done
	return data, nil
}

// Bitwise executes one two-operand operation in flash under the scheme
// and returns the result with its modeled latency.
func (d *Device) Bitwise(op Op, first, second uint64, scheme Scheme) (Result, error) {
	start := d.now
	r, err := d.dev.Bitwise(op.latch(), first, second, scheme.ssd(), start)
	if err != nil {
		return Result{}, err
	}
	d.now = r.Done
	return Result{Data: r.Data, Latency: r.Done.Sub(start).Std()}, nil
}

// Reduce folds operand pages with an associative operation (And, Or or
// Xor), using the scheme's chained execution (§4.2, §5.3).
func (d *Device) Reduce(op Op, lpns []uint64, scheme Scheme) (Result, error) {
	switch op {
	case And, Or, Xor:
	default:
		return Result{}, errors.New("parabit: Reduce requires And, Or or Xor")
	}
	start := d.now
	r, err := d.dev.Reduce(op.latch(), lpns, scheme.ssd(), start)
	if err != nil {
		return Result{}, err
	}
	d.now = r.Done
	return Result{Data: r.Data, Latency: r.Done.Sub(start).Std()}, nil
}

// BitwiseToHost executes Bitwise and ships the result over the host
// link, filling HostLatency.
func (d *Device) BitwiseToHost(op Op, first, second uint64, scheme Scheme) (Result, error) {
	start := d.now
	r, err := d.dev.Bitwise(op.latch(), first, second, scheme.ssd(), start)
	if err != nil {
		return Result{}, err
	}
	d.dev.ShipToHost(&r)
	d.now = r.HostDone
	return Result{
		Data:        r.Data,
		Latency:     r.Done.Sub(start).Std(),
		HostLatency: r.HostDone.Sub(start).Std(),
	}, nil
}

// Reclaim trims the controller's internal reallocation pool. Call
// between large batches of Reallocated-scheme operations.
func (d *Device) Reclaim() { d.dev.ReclaimInternal() }

// Stats reports device activity counters.
type Stats struct {
	BitwiseOps    int64
	Reallocations int64
	Fallbacks     int64
	SROs          int64
	Programs      int64
	Erases        int64
	InjectedFlips int64
	// WriteAmplification is (host+internal writes)/host writes.
	WriteAmplification float64
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	op := d.dev.Stats()
	fl := d.dev.Array().Stats()
	ft := d.dev.FTL().Stats()
	return Stats{
		BitwiseOps:         op.BitwiseOps,
		Reallocations:      op.Reallocations,
		Fallbacks:          op.Fallbacks,
		SROs:               fl.SROs,
		Programs:           fl.Programs,
		Erases:             fl.Erases,
		InjectedFlips:      fl.InjectedFlips,
		WriteAmplification: ft.WriteAmplification(),
	}
}

// Elapsed returns the device's virtual clock: total modeled time consumed
// by the operations issued so far.
func (d *Device) Elapsed() time.Duration { return sim.Duration(d.now).Std() }
